"""Tests for the multi-device distributed solver and its integrations.

The load-bearing property: for every mode, device count, dtype, and
system shape, :class:`DistributedSolver` produces the same answer as the
single-device :class:`MultiStageSolver` (to <= 1e-10 relative error in
float64 — the SPIKE reduced system is the only extra arithmetic).
"""

import numpy as np
import pytest
from hypothesis import assume, given, settings, strategies as st

from repro.core import solve
from repro.core.dispatch import HybridDispatcher
from repro.core.tuning import TuningCache
from repro.dist import (
    DistributedSolver,
    get_link,
    make_device_group,
    render_dist_timeline,
    working_set_nbytes,
)
from repro.gpu import make_device
from repro.gpu.spec import get_device_spec
from repro.service import BatchSolveService
from repro.systems import generators
from repro.util.errors import ConfigurationError, PlanError

pytestmark = pytest.mark.dist

REL_TOL_F64 = 1e-10
REL_TOL_F32 = 1e-4


def rel_error(x, reference):
    return np.abs(x - reference).max() / (np.abs(reference).max() + 1e-300)


def single_device_reference(batch):
    return solve(batch).x


class TestEquivalence:
    @pytest.mark.parametrize("count", [1, 2, 3, 8])
    def test_matches_single_device(self, count):
        batch = generators.random_dominant(3, 1000, rng=count)
        result = DistributedSolver(count, verify=True).solve(batch)
        assert rel_error(result.x, single_device_reference(batch)) <= REL_TOL_F64

    @pytest.mark.parametrize("n", [97, 500, 999, 4097])
    def test_non_power_of_two_sizes(self, n):
        batch = generators.random_dominant(2, n, rng=n)
        result = DistributedSolver(4, verify=True).solve(batch)
        assert rel_error(result.x, single_device_reference(batch)) <= REL_TOL_F64

    def test_float32(self):
        batch = generators.random_dominant(3, 512, rng=5, dtype=np.float32)
        result = DistributedSolver(4, verify=True).solve(batch)
        assert result.x.dtype == np.float32
        assert rel_error(result.x, single_device_reference(batch)) <= REL_TOL_F32

    def test_near_singular_dominant(self):
        # Barely dominant systems stress the reduced solve's conditioning.
        batch = generators.random_dominant(2, 768, dominance=1.02, rng=6)
        result = DistributedSolver(8, verify=True).solve(batch)
        assert rel_error(result.x, single_device_reference(batch)) <= REL_TOL_F64

    def test_batch_mode_is_bit_identical(self):
        # Sharding systems across devices does not touch their arithmetic.
        batch = generators.random_dominant(64, 128, rng=7)
        result = DistributedSolver(4, mode="batch").solve(batch)
        np.testing.assert_array_equal(result.x, single_device_reference(batch))

    @pytest.mark.parametrize("schedule", ["fused", "split"])
    def test_rows_schedules_agree(self, schedule):
        batch = generators.random_dominant(2, 2048, rng=8)
        result = DistributedSolver(4, schedule=schedule, verify=True).solve(batch)
        assert result.plan.schedule == schedule
        assert rel_error(result.x, single_device_reference(batch)) <= REL_TOL_F64


@settings(max_examples=20, deadline=None)
@given(
    m=st.integers(min_value=1, max_value=4),
    n=st.integers(min_value=64, max_value=3000),
    count=st.sampled_from([1, 2, 3, 8]),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
def test_dist_equivalence_property(m, n, count, seed):
    """DistributedSolver == MultiStageSolver across shapes and counts."""
    assume(n >= 2 * count)
    batch = generators.random_dominant(m, n, rng=seed)
    result = DistributedSolver(count).solve(batch)
    assert rel_error(result.x, single_device_reference(batch)) <= REL_TOL_F64


class TestCostModel:
    @pytest.mark.parametrize("kind", ["all_to_all", "ring"])
    @pytest.mark.parametrize("mode", ["rows", "batch"])
    def test_makespan_monotone_in_link_latency(self, kind, mode):
        previous = -1.0
        for latency_us in (0.0, 2.0, 20.0, 200.0, 2000.0):
            link = get_link("pcie3").with_(latency_us=latency_us)
            group = make_device_group("gtx470", 8, link, kind)
            _, report = DistributedSolver(group, mode=mode).price(16, 1024, 8)
            assert report.total_ms >= previous - 1e-12
            previous = report.total_ms

    def test_speedup_at_eight_devices(self):
        # The bench's acceptance bar, pinned here so regressions surface
        # in the fast tier: >= 3x at 8 devices on a 2^22-row system.
        one = DistributedSolver(1).price(1, 1 << 22, 8)[1].total_ms
        eight = DistributedSolver(8).price(1, 1 << 22, 8)[1].total_ms
        assert one / eight >= 3.0

    def test_timeline_is_consistent(self):
        batch = generators.random_dominant(2, 4096, rng=9)
        result = DistributedSolver(4).solve(batch)
        report = result.report
        assert report.num_devices == 4
        assert 0.0 < report.compute_utilization <= 1.0
        ends = []
        for timeline in report.timelines:
            for event in timeline.events:
                assert 0.0 <= event.start_ms <= event.end_ms
                assert event.kind in ("compute", "xfer")
                ends.append(event.end_ms)
        assert report.total_ms == pytest.approx(max(ends))
        rendered = render_dist_timeline(report)
        assert "dev0" in rendered and "dev3" in rendered

    def test_price_matches_solve_report(self):
        # The data-free price and the executed solve tell the same story.
        batch = generators.random_dominant(2, 4096, rng=10)
        solver = DistributedSolver(4)
        _, priced = solver.price(2, 4096, 8)
        executed = solver.solve(batch).report
        assert priced.total_ms == pytest.approx(executed.total_ms, rel=1e-9)


class TestDistPlan:
    def test_signature_ignores_system_count(self):
        solver = DistributedSolver(4)
        plan = solver.price(2, 4096, 8)[0]
        widened = plan.with_num_systems(7)
        assert widened.signature == plan.signature
        assert widened.num_systems == 7

    def test_signature_distinguishes_configurations(self):
        base = DistributedSolver(4).price(2, 4096, 8)[0]
        other_count = DistributedSolver(8).price(2, 4096, 8)[0]
        ring = DistributedSolver(
            make_device_group("gtx470", 4, "pcie3", "ring")
        ).price(2, 4096, 8)[0]
        assert base.signature != other_count.signature
        assert base.signature != ring.signature

    def test_batch_mode_widening_rebalances_shares(self):
        solver = DistributedSolver(4, mode="batch")
        plan = solver.price(8, 128, 8)[0]
        widened = plan.with_num_systems(10)
        assert widened.chunk_sizes == (3, 3, 2, 2)
        assert widened.signature == plan.signature

    def test_execute_rejects_mismatched_plan(self):
        solver = DistributedSolver(4)
        batch = generators.random_dominant(2, 1024, rng=11)
        plan = solver.plan_for(batch)
        other = generators.random_dominant(5, 1024, rng=12)
        with pytest.raises(PlanError):
            solver.execute_plan(other, plan)
        solver.execute_plan(other, plan.with_num_systems(5))

    def test_infeasible_configurations_raise(self):
        # 16 devices need >= 32 rows in rows mode; off-chip systems
        # cannot shard in batch mode; nothing feasible raises.
        with pytest.raises(ConfigurationError):
            DistributedSolver(16, mode="rows").price(1, 20, 8)
        with pytest.raises(ConfigurationError):
            DistributedSolver(4, mode="batch").price(4, 1 << 20, 8)


def shrunken_device(mem_bytes=2_000_000):
    spec = get_device_spec("gtx470").with_overrides(global_mem_bytes=mem_bytes)
    return make_device(spec)


class TestDispatcherIntegration:
    def test_learns_to_distribute_on_memory_overflow(self):
        dev = shrunken_device()
        dispatcher = HybridDispatcher(dev, dist=4)
        batch = generators.random_dominant(8, 8192, rng=13)  # 2.6 MB > 2 MB
        choice = dispatcher.choose(batch)
        assert choice.gpu_ms == float("inf")
        assert choice.engine == "dist"
        x, _ = dispatcher.solve(batch)
        assert rel_error(x, single_device_reference(batch)) <= REL_TOL_F64

    def test_in_memory_workloads_keep_the_single_gpu(self):
        dispatcher = HybridDispatcher(shrunken_device(), dist=4)
        choice = dispatcher.choose(generators.random_dominant(64, 512, rng=14))
        assert choice.engine == "gpu"
        assert choice.dist_ms is not None
        assert choice.advantage >= 1.0

    def test_without_a_group_nothing_changes(self):
        dispatcher = HybridDispatcher("gtx470")
        choice = dispatcher.choose(generators.random_dominant(8, 512, rng=15))
        assert choice.dist_ms is None
        assert choice.engine in ("gpu", "cpu")


class TestServiceIntegration:
    def test_oversized_requests_route_and_merge(self):
        dev = shrunken_device()
        with BatchSolveService(dev, dist=8, verify=True) as service:
            big = [
                generators.random_dominant(4, 16384, rng=seed)
                for seed in (16, 17)
            ]
            small = generators.random_dominant(4, 256, rng=18)
            futures = [service.submit(b) for b in (*big, small)]
            service.flush()
            results = [f.result() for f in futures]
        assert results[0].group_requests == 2  # both big requests merged
        assert "x8" in results[0].group_label
        assert results[2].group_requests == 1  # the small one stayed local
        for batch, result in zip((*big, small), results):
            assert rel_error(result.x, single_device_reference(batch)) <= REL_TOL_F64

    def test_merged_answer_is_bit_identical_to_standalone_dist(self):
        dev = shrunken_device()
        batch = generators.random_dominant(4, 16384, rng=19)
        with BatchSolveService(dev, dist=8) as service:
            other = generators.random_dominant(4, 16384, rng=20)
            futures = [service.submit(b) for b in (batch, other)]
            service.flush()
            merged_x = futures[0].result().x
        standalone = service.dist_solver.solve(batch)
        np.testing.assert_array_equal(merged_x, standalone.x)

    def test_stats_expose_cache_counters(self):
        with BatchSolveService("gtx470", dist=4) as service:
            service.solve_many(
                [generators.random_dominant(2, 128, rng=21) for _ in range(3)]
            )
            snap = service.stats.snapshot()
        counters = snap["tuning_cache"]
        assert counters is not None
        assert counters["misses"] >= 1
        assert counters["entries"] >= 1
        assert "cache hits" in service.stats.describe()


class TestTuningCacheCounters:
    def test_get_counts_hits_and_misses(self):
        cache = TuningCache()
        assert cache.get("gtx470", 8) is None
        assert cache.counters() == {"hits": 0, "misses": 1, "entries": 0}
        from repro.core.config import SwitchPoints

        sp = SwitchPoints(
            stage1_target_systems=28,
            stage3_system_size=512,
            thomas_switch=64,
            base_variant="coalesced",
            variant_crossover_stride=None,
            source="test",
        )
        cache.put("gtx470", 8, sp)
        assert cache.get("gtx470", 8) is not None
        assert cache.counters() == {"hits": 1, "misses": 1, "entries": 1}

    def test_get_or_tune_counts_exactly_once(self):
        from repro.core.config import SwitchPoints

        cache = TuningCache()
        sp = SwitchPoints(
            stage1_target_systems=28,
            stage3_system_size=512,
            thomas_switch=64,
            base_variant="coalesced",
            variant_crossover_stride=None,
            source="test",
        )
        cache.get_or_tune("gtx470", 8, lambda: sp)  # miss, tunes
        cache.get_or_tune("gtx470", 8, lambda: sp)  # hit
        assert cache.counters() == {"hits": 1, "misses": 1, "entries": 1}
        cache.reset_counters()
        assert cache.counters() == {"hits": 0, "misses": 0, "entries": 1}


class TestCliAndBench:
    def test_dist_bench_command(self, capsys):
        import io

        from repro.cli import main

        out = io.StringIO()
        code = main(
            ["dist-bench", "--devices", "1,4", "--size", str(1 << 16)], out=out
        )
        text = out.getvalue()
        assert code == 0
        assert "Strong scaling" in text
        assert "Weak scaling" in text
        assert "dev0" in text  # the per-device timeline

    def test_dist_bench_json(self, tmp_path):
        import io
        import json

        from repro.cli import main

        path = tmp_path / "scaling.json"
        code = main(
            [
                "dist-bench",
                "--devices",
                "1,2",
                "--size",
                str(1 << 14),
                "--json",
                str(path),
            ],
            out=io.StringIO(),
        )
        assert code == 0
        payload = json.loads(path.read_text())
        assert [r["devices"] for r in payload["strong"]] == [1, 2]
        assert payload["link"] == "pcie3"

    def test_working_set_helper(self):
        assert working_set_nbytes(2, 100, 8) == 5 * 2 * 100 * 8
