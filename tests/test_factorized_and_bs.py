"""Tests for factorization reuse and the Black-Scholes pricer."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.algorithms import (
    factorize,
    pcr_thomas_solve,
    scipy_banded_solve,
    thomas_solve,
)
from repro.apps import BlackScholesPricer, black_scholes_closed_form
from repro.systems import generators
from repro.util.errors import ConfigurationError, ShapeError


class TestFactorization:
    def test_matches_direct_solve(self):
        batch = generators.random_dominant(8, 256, rng=0)
        factors = factorize(batch)
        x = factors.solve(batch.d)
        np.testing.assert_allclose(x, scipy_banded_solve(batch), atol=1e-10)

    @pytest.mark.parametrize("depth", [0, 1, 3, 6])
    def test_any_split_depth(self, depth):
        batch = generators.random_dominant(4, 128, rng=depth)
        factors = factorize(batch, split_depth=depth)
        np.testing.assert_allclose(
            factors.solve(batch.d), thomas_solve(batch), atol=1e-10
        )

    def test_reuse_across_many_rhs(self):
        batch = generators.random_dominant(4, 512, rng=1)
        factors = factorize(batch)
        rng = np.random.default_rng(2)
        for _ in range(5):
            d = rng.standard_normal(batch.shape)
            x = factors.solve(d)
            assert batch.with_rhs(d).residual(x).max() < 1e-12

    def test_matches_hybrid_exactly_for_same_depth(self):
        """Same split depth -> numerically the same algorithm."""
        batch = generators.random_dominant(2, 256, rng=3)
        factors = factorize(batch, split_depth=4)
        np.testing.assert_allclose(
            factors.solve(batch.d),
            pcr_thomas_solve(batch, 16),
            atol=1e-12,
            rtol=1e-12,
        )

    def test_shape_validation(self):
        batch = generators.random_dominant(2, 64, rng=4)
        factors = factorize(batch)
        with pytest.raises(ShapeError):
            factors.solve(np.zeros((2, 32)))
        with pytest.raises(ShapeError):
            factorize(batch, split_depth=8)  # 2^8 > 64

    def test_non_pow2_rejected(self):
        batch = generators.random_dominant(1, 100, rng=5)
        with pytest.raises(ConfigurationError):
            factorize(batch)


@settings(max_examples=20, deadline=None)
@given(
    n_exp=st.integers(min_value=2, max_value=9),
    depth=st.integers(min_value=0, max_value=5),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
def test_factorization_property(n_exp, depth, seed):
    n = 1 << n_exp
    depth = min(depth, n_exp)
    batch = generators.random_dominant(3, n, rng=seed)
    factors = factorize(batch, split_depth=depth)
    x = factors.solve(batch.d)
    assert batch.residual(x).max() < 1e-10


class TestBlackScholes:
    def test_matches_closed_form_calls(self):
        pricer = BlackScholesPricer(
            rate=0.03, sigma=0.25, grid_points=512, time_steps=400
        )
        strikes = np.array([80.0, 100.0, 120.0])
        spot, maturity = 100.0, 1.0
        pde = pricer.price(strikes, maturity, spot, call=True)
        exact = black_scholes_closed_form(spot, strikes, 0.03, 0.25, maturity)
        # With cell-averaged payoffs and interpolated readout the
        # pricer is accurate to well under a cent here.
        np.testing.assert_allclose(pde, exact, atol=0.02)

    def test_matches_closed_form_puts(self):
        pricer = BlackScholesPricer(
            rate=0.05, sigma=0.2, grid_points=512, time_steps=400
        )
        pde = pricer.price(np.array([100.0]), 0.5, 100.0, call=False)
        exact = black_scholes_closed_form(
            100.0, 100.0, 0.05, 0.2, 0.5, call=False
        )
        assert pde[0] == pytest.approx(float(exact), abs=0.02)

    def test_put_call_parity(self):
        pricer = BlackScholesPricer(grid_points=512, time_steps=300)
        strike, spot, maturity = 105.0, 100.0, 1.0
        call = pricer.price(np.array([strike]), maturity, spot, call=True)[0]
        put = pricer.price(np.array([strike]), maturity, spot, call=False)[0]
        parity = spot - strike * np.exp(-pricer.rate * maturity)
        assert call - put == pytest.approx(parity, abs=0.05)

    def test_monotone_in_strike(self):
        pricer = BlackScholesPricer(grid_points=256, time_steps=100)
        strikes = np.array([80.0, 90.0, 100.0, 110.0, 120.0])
        calls = pricer.price(strikes, 1.0, 100.0, call=True)
        assert (np.diff(calls) < 0).all()  # call value falls with strike

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            BlackScholesPricer(sigma=-0.1)
        pricer = BlackScholesPricer(grid_points=128, time_steps=10)
        with pytest.raises(ConfigurationError):
            pricer.price(np.array([100.0]), -1.0, 100.0)

    def test_grid_rounded_to_pow2(self):
        pricer = BlackScholesPricer(grid_points=300, time_steps=10)
        assert pricer.grid_points == 512
