"""Tests for the fault-injection and recovery layer.

The layer's contract, exercised piece by piece:

- :class:`FaultPlan` decisions are pure functions of the seed — the
  same plan produces the same faults run after run, and price mode
  sees exactly the transient faults execute mode sees.
- Transient faults are retried with backoff and either succeed
  bit-identically or escape as a typed, instruction-annotated error.
- A permanent device loss mid-run makes the distributed solver
  re-partition onto the survivors, still produce the verified answer,
  and price the wasted makespan into the combined report.
- The service converts faults into typed outcomes: expired deadlines,
  bisected poison requests, breaker-shed overload — never a silently
  wrong answer.
"""

import threading

import numpy as np
import pytest

from repro.core import MultiStageSolver, SwitchPoints
from repro.core.planner import plan_solve
from repro.core.tuning import make_tuner
from repro.dist import DistributedSolver
from repro.dist.partition import surviving_indices
from repro.dist.pipeline import failover_report
from repro.faults import (
    ClockSkew,
    DeviceFailure,
    FaultEvent,
    FaultInjector,
    FaultLog,
    FaultPlan,
    LinkDegradation,
    LinkPartition,
    RetryPolicy,
    TransientKernelFault,
    WorkerStall,
)
from repro.gpu import make_device
from repro.ir import Engine, lower_solve_plan
from repro.service import BatchSolveService, CircuitBreaker
from repro.systems import generators
from repro.util.errors import (
    ConfigurationError,
    DeadlineExceededError,
    DeviceLostError,
    FaultInjectionError,
    ServiceOverloadedError,
    SingularSystemError,
)

DEVICE = "gtx470"
SWITCH = SwitchPoints(
    stage1_target_systems=16, stage3_system_size=256, thomas_switch=64
)


def _solver(faults=None):
    return MultiStageSolver(DEVICE, SWITCH, faults=faults)


class TestFaultPlan:
    def test_draws_are_deterministic_and_uniform_range(self):
        plan = FaultPlan(seed=7)
        a = plan.draw("transient", 0, "solve", 4, 256, 3, 0)
        b = plan.draw("transient", 0, "solve", 4, 256, 3, 0)
        assert a == b
        assert 0.0 <= a < 1.0
        # A different seed or a different key decorrelates the draw.
        assert a != FaultPlan(seed=8).draw("transient", 0, "solve", 4, 256, 3, 0)
        assert a != plan.draw("transient", 0, "solve", 4, 256, 3, 1)

    def test_spec_validation(self):
        with pytest.raises(ConfigurationError):
            TransientKernelFault(probability=1.5)
        with pytest.raises(ConfigurationError):
            LinkDegradation(factor=0.5)
        with pytest.raises(ConfigurationError):
            ClockSkew(device=0, factor=0.0)
        with pytest.raises(ConfigurationError):
            WorkerStall(probability=0.1, stall_ms=-1.0)
        with pytest.raises(ConfigurationError):
            RetryPolicy(max_attempts=0)

    def test_backoff_is_exponential_and_capped(self):
        retry = RetryPolicy(base_backoff_ms=0.5, backoff_cap_ms=2.0)
        assert retry.backoff_ms(0) == 0.5
        assert retry.backoff_ms(1) == 1.0
        assert retry.backoff_ms(2) == 2.0
        assert retry.backoff_ms(9) == 2.0

    def test_environment_accessors(self):
        plan = FaultPlan(
            faults=(
                LinkDegradation(2.0),
                LinkDegradation(3.0),
                LinkPartition(0, 2),
                ClockSkew(device=1, factor=4.0),
            )
        )
        assert plan.link_factor() == 6.0
        assert plan.partitioned(0, 2) and plan.partitioned(2, 0)
        assert not plan.partitioned(0, 1)
        assert plan.skew_factor(1) == 4.0
        assert plan.skew_factor(0) == 1.0
        assert "LinkPartition" in plan.describe()


class TestFaultLog:
    def test_counts_and_overhead(self):
        log = FaultLog()
        log.record(FaultEvent(kind="transient", action="injected", penalty_ms=0.5))
        log.record(FaultEvent(kind="transient", action="retried", penalty_ms=0.25))
        log.record(FaultEvent(kind="stall", action="injected"))
        assert log.count("transient", "injected") == 1
        assert log.counts()["transient:retried"] == 1
        assert log.overhead_ms == pytest.approx(0.75)
        summary = log.summary()
        assert summary["counts"]["stall:injected"] == 1
        assert len(log.events()) == 3


class TestTransientRetry:
    def test_retry_then_succeed_is_bit_identical(self):
        batch = generators.random_dominant(2, 256, rng=0)
        baseline = _solver().solve(batch)
        plan = FaultPlan(
            seed=0,
            faults=(TransientKernelFault(probability=1.0, max_failures=2),),
            retry=RetryPolicy(max_attempts=4, budget=16),
        )
        inj = FaultInjector(plan)
        result = _solver(faults=inj).solve(batch)
        np.testing.assert_array_equal(result.x, baseline.x)
        # Both failures retried, and the wasted work was priced.
        assert inj.log.count("transient", "injected") == 2
        assert inj.log.count("transient", "retried") == 2
        assert inj.log.overhead_ms > 0.0
        # The solver's own report is the fault-free cost: recovery
        # overhead lives in the fault log, in the same currency.
        assert result.report.total_ms == baseline.report.total_ms

    def test_exhaustion_raises_typed_annotated_error(self):
        plan = FaultPlan(
            seed=0,
            faults=(TransientKernelFault(probability=1.0),),
            retry=RetryPolicy(max_attempts=2, budget=64),
        )
        inj = FaultInjector(plan)
        with pytest.raises(FaultInjectionError) as excinfo:
            _solver(faults=inj).solve(generators.random_dominant(2, 256, rng=0))
        index, op, device = excinfo.value.instruction
        assert index >= 0 and isinstance(op, str) and device == 0
        assert f"[step {index}: {op} on dev{device}]" in str(excinfo.value)
        assert inj.log.count("transient", "exhausted") == 1

    def test_budget_bounds_retries_across_the_program(self):
        plan = FaultPlan(
            seed=0,
            faults=(TransientKernelFault(probability=1.0),),
            retry=RetryPolicy(max_attempts=10, budget=3),
        )
        inj = FaultInjector(plan)
        with pytest.raises(FaultInjectionError):
            _solver(faults=inj).solve(generators.random_dominant(2, 256, rng=0))
        assert inj.log.count("transient", "retried") == 3

    def test_paused_injector_never_fires(self):
        plan = FaultPlan(seed=0, faults=(TransientKernelFault(probability=1.0),))
        inj = FaultInjector(plan)
        batch = generators.random_dominant(2, 128, rng=1)
        with inj.paused():
            result = _solver(faults=inj).solve(batch)
        np.testing.assert_array_equal(result.x, _solver().solve(batch).x)
        assert not inj.log.events()

    @pytest.mark.filterwarnings("ignore::RuntimeWarning")
    def test_error_annotation_without_injector(self):
        """Instruction context attaches to any engine error, faults or not."""
        with pytest.raises(SingularSystemError) as excinfo:
            _solver().solve(generators.singular(2, 64))
        index, op, device = excinfo.value.instruction
        assert device == 0 and op
        assert f"step {index}" in str(excinfo.value)

    def test_price_and_execute_see_identical_faults(self):
        """The headline determinism property: the priced schedule and
        the data-carrying execution of one program inject the same
        transient faults at the same instructions and attempts."""
        device = make_device(DEVICE)
        batch = generators.random_dominant(3, 512, rng=2)
        switch = make_tuner("static").switch_points(device, 3, 512, 8)
        program = lower_solve_plan(plan_solve(device, 3, 512, 8, switch), device, 8)
        plan = FaultPlan(
            seed=11,
            faults=(TransientKernelFault(probability=0.4),),
            retry=RetryPolicy(max_attempts=8, budget=64),
        )

        def fault_points(run_mode):
            engine = Engine.for_device(device)
            engine.injector = FaultInjector(plan)
            if run_mode == "execute":
                engine.execute(program, batch)
            else:
                engine.price(program)
            return [
                (e.step, e.op, e.attempt)
                for e in engine.injector.log.events()
                if e.kind == "transient" and e.action == "injected"
            ]

        executed = fault_points("execute")
        priced = fault_points("price")
        assert executed  # the seed is chosen so faults actually fire
        assert executed == priced


class TestDeviceLoss:
    def test_single_device_failure_is_terminal(self):
        """No survivors behind a lone solver: the loss escapes typed."""
        inj = FaultInjector(FaultPlan(faults=(DeviceFailure(device=0),)))
        with pytest.raises(DeviceLostError) as excinfo:
            _solver(faults=inj).solve(generators.random_dominant(2, 128, rng=0))
        assert excinfo.value.device == 0
        assert inj.dead_devices() == frozenset({0})

    def test_dead_devices_stay_dead(self):
        inj = FaultInjector(FaultPlan())
        inj.fail_device(3, detail="test kill")
        assert inj.dead_devices() == frozenset({3})
        assert inj.log.count("device_lost", "injected") == 1
        inj.fail_device(3)  # idempotent: one event, still dead
        assert inj.log.count("device_lost", "injected") == 1

    def test_surviving_indices(self):
        assert surviving_indices(4, {2}) == (0, 1, 3)
        assert surviving_indices(3, set()) == (0, 1, 2)
        with pytest.raises(ConfigurationError):
            surviving_indices(2, {0, 1})


@pytest.mark.dist
class TestDistributedFailover:
    def test_kill_one_of_four_devices_mid_run(self):
        batch = generators.random_dominant(4, 4096, rng=0)
        baseline = DistributedSolver(4).solve(batch)
        inj = FaultInjector(
            FaultPlan(faults=(DeviceFailure(device=2, at_instruction=0),))
        )
        result = DistributedSolver(4, verify=True, faults=inj).solve(batch)
        np.testing.assert_allclose(result.x, baseline.x, rtol=1e-10)
        # The re-partition is visible in the schedule and the log, and
        # the aborted plan's makespan is priced as recovery overhead.
        assert result.report.schedule.startswith("failover:")
        assert inj.dead_devices() == frozenset({2})
        assert inj.log.count("device_lost", "failed_over") >= 1
        overhead = sum(
            e.penalty_ms
            for e in inj.log.events()
            if e.kind == "device_lost" and e.action == "failed_over"
        )
        assert overhead > 0.0
        assert result.report.total_ms > baseline.report.total_ms

    def test_link_partition_fails_over_to_reachable_peers(self):
        batch = generators.random_dominant(4, 4096, rng=1)
        baseline = DistributedSolver(4).solve(batch)
        inj = FaultInjector(FaultPlan(faults=(LinkPartition(0, 1),)))
        result = DistributedSolver(4, verify=True, faults=inj).solve(batch)
        np.testing.assert_allclose(result.x, baseline.x, rtol=1e-10)
        assert result.report.schedule.startswith("failover:")
        assert inj.dead_devices() == frozenset({1})
        assert inj.log.count("link_partition", "injected") >= 1

    def test_no_survivors_is_a_typed_configuration_error(self):
        inj = FaultInjector(
            FaultPlan(faults=tuple(DeviceFailure(device=d) for d in range(2)))
        )
        with pytest.raises(ConfigurationError):
            DistributedSolver(2, faults=inj).solve(
                generators.random_dominant(2, 2048, rng=2)
            )

    def test_environmental_slowdowns_price_into_the_report(self):
        batch = generators.random_dominant(4, 4096, rng=3)
        base = DistributedSolver(4).solve(batch).report.total_ms
        skewed = (
            DistributedSolver(
                4, faults=FaultPlan(faults=(ClockSkew(device=0, factor=8.0),))
            )
            .solve(batch)
            .report.total_ms
        )
        degraded = (
            DistributedSolver(
                4, faults=FaultPlan(faults=(LinkDegradation(8.0),))
            )
            .solve(batch)
            .report.total_ms
        )
        assert skewed > base
        assert degraded > base

    def test_failover_report_splices_recovery_after_abort(self):
        batch = generators.random_dominant(3, 4096, rng=4)
        aborted = DistributedSolver(4, mode="rows").solve(batch).report
        recovery = DistributedSolver(3, mode="rows").solve(batch).report
        combined = failover_report(aborted, recovery, survivor_ids=(0, 1, 3))
        assert combined.schedule == f"failover:{recovery.schedule}"
        assert combined.group_label == aborted.group_label
        assert combined.total_ms == pytest.approx(
            aborted.total_ms + recovery.total_ms
        )


class TestCircuitBreaker:
    def test_state_machine_with_injected_clock(self):
        now = [0.0]
        breaker = CircuitBreaker(
            failure_threshold=2, cooldown_s=10.0, clock=lambda: now[0]
        )
        assert breaker.state == "closed" and breaker.allow()
        breaker.record_failure()
        assert breaker.state == "closed"
        breaker.record_failure()
        assert breaker.state == "open" and not breaker.allow()
        # Cooldown lapses: half-open probes are allowed through.
        now[0] = 10.0
        assert breaker.state == "half_open" and breaker.allow()
        # A half-open failure re-opens immediately (streak irrelevant).
        breaker.record_failure()
        assert breaker.state == "open"
        now[0] = 20.0
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == "closed"
        assert breaker.times_opened == 2

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ConfigurationError):
            CircuitBreaker(cooldown_s=-1.0)


class TestServiceRecovery:
    def test_deadline_expiry_is_typed_and_counted(self):
        with BatchSolveService(DEVICE, SWITCH) as svc:
            fut = svc.submit(
                generators.random_dominant(1, 64, rng=0), deadline_ms=0.0
            )
            svc.flush()
            with pytest.raises(DeadlineExceededError):
                fut.result(timeout=30)
            assert svc.stats.snapshot()["requests_deadline_expired"] == 1

    @pytest.mark.filterwarnings("ignore::RuntimeWarning")
    def test_bisection_isolates_the_poison_request(self):
        """One hopeless governed request merged with five good ones: the
        good five still solve bit-correctly, only the poison fails.

        (Exactly singular systems no longer reach the solver — submit
        rejects them typed — so the poison is a valid near-singular
        system the exact verifier rejects.)
        """
        from repro.util.errors import NumericsError

        good = [generators.random_dominant(1, 64, rng=i) for i in range(5)]
        poison = generators.ill_conditioned(1, 64, epsilon=1e-13, rng=9)
        with BatchSolveService(DEVICE, SWITCH, verify=True) as svc:
            good_futs = [svc.submit(b) for b in good[:3]]
            poison_fut = svc.submit(poison)
            good_futs += [svc.submit(b) for b in good[3:]]
            svc.flush()
            for batch, fut in zip(good, good_futs):
                res = fut.result(timeout=30)
                np.testing.assert_array_equal(
                    res.x, MultiStageSolver(DEVICE, SWITCH).solve(batch).x
                )
            with pytest.raises(NumericsError):
                poison_fut.result(timeout=30)
            snap = svc.stats.snapshot()
        assert snap["group_bisections"] >= 1
        assert snap["requests_completed"] == 5
        assert snap["requests_failed"] == 1

    @pytest.mark.filterwarnings("ignore::RuntimeWarning")
    def test_breaker_sheds_after_consecutive_failures(self):
        from repro.util.errors import NumericalBreakdownError

        poison = generators.ill_conditioned(1, 64, epsilon=1e-13, rng=9)
        breaker = CircuitBreaker(failure_threshold=2, cooldown_s=60.0)
        with BatchSolveService(DEVICE, SWITCH, breaker=breaker) as svc:
            for _ in range(2):
                fut = svc.submit(poison, tolerance=1e-12)
                svc.flush()
                with pytest.raises(NumericalBreakdownError):
                    fut.result(timeout=30)
            assert breaker.state == "open"
            with pytest.raises(ServiceOverloadedError):
                svc.submit(generators.random_dominant(1, 64, rng=0))
            assert svc.stats.snapshot()["requests_shed"] == 1

    def test_worker_stalls_are_logged_and_surfaced_in_stats(self):
        plan = FaultPlan(
            seed=0, faults=(WorkerStall(probability=1.0, stall_ms=1.0),)
        )
        with BatchSolveService(DEVICE, SWITCH, faults=plan) as svc:
            batch = generators.random_dominant(1, 64, rng=0)
            fut = svc.submit(batch)
            svc.flush()
            res = fut.result(timeout=30)
            np.testing.assert_array_equal(
                res.x, MultiStageSolver(DEVICE, SWITCH).solve(batch).x
            )
            snap = svc.stats.snapshot()
        assert svc.faults.log.count("stall", "injected") >= 1
        assert snap["faults"]["counts"]["stall:injected"] >= 1
        assert snap["faults"]["overhead_ms"] > 0.0

    def test_transient_faults_inside_the_service_still_answer_right(self):
        plan = FaultPlan(
            seed=0,
            faults=(TransientKernelFault(probability=1.0, max_failures=1),),
            retry=RetryPolicy(max_attempts=4, budget=16),
        )
        batch = generators.random_dominant(2, 100, rng=5)
        with BatchSolveService(DEVICE, SWITCH, verify=True, faults=plan) as svc:
            (res,) = svc.solve_many([batch])
        np.testing.assert_array_equal(
            res.x, MultiStageSolver(DEVICE, SWITCH).solve(batch).x
        )
        assert svc.faults.log.count("transient", "retried") == 1


class TestInjectorViews:
    def test_views_map_local_indices_to_global_ids(self):
        root = FaultInjector(FaultPlan())
        member = root.for_device(2)
        assert member.global_id(0) == 2
        survivors = root.for_survivors((0, 1, 3))
        assert [survivors.global_id(i) for i in range(3)] == [0, 1, 3]
        # Views compose: the survivors' member 2 is global device 3.
        nested = survivors.for_device(2)
        assert nested.global_id(0) == 3

    def test_views_share_one_runtime(self):
        root = FaultInjector(FaultPlan())
        root.for_device(1).fail_device(root.for_device(1).global_id(0))
        assert root.dead_devices() == frozenset({1})

    def test_check_link_marks_peer_dead_and_raises(self):
        inj = FaultInjector(FaultPlan(faults=(LinkPartition(0, 2),)))
        inj.check_link(0, 1)  # healthy link: no-op
        with pytest.raises(DeviceLostError) as excinfo:
            inj.check_link(0, 2, label="test")
        assert excinfo.value.device == 2
        assert inj.dead_devices() == frozenset({2})
        with inj.paused():
            inj.check_link(0, 2)  # pricing/planning never trips links

    def test_maybe_stall_respects_pause_and_absence(self):
        quiet = FaultInjector(FaultPlan())
        assert quiet.maybe_stall() == 0.0
        stalling = FaultInjector(
            FaultPlan(faults=(WorkerStall(probability=1.0, stall_ms=0.1),))
        )
        with stalling.paused():
            assert stalling.maybe_stall() == 0.0
        assert stalling.maybe_stall("label") > 0.0


def test_concurrent_injector_use_is_thread_safe():
    """Many threads hammering one injector's counters and log stay
    consistent — the service shares one injector across its workers."""
    plan = FaultPlan(
        seed=0, faults=(WorkerStall(probability=0.5, stall_ms=0.0),)
    )
    inj = FaultInjector(plan)
    threads = [
        threading.Thread(target=lambda: [inj.maybe_stall() for _ in range(50)])
        for _ in range(8)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=30)
    assert not any(t.is_alive() for t in threads)
    assert inj._rt.stall_seq == 400
