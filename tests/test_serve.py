"""Unit tests for the async serving tier's building blocks.

Covers the sharded tuning cache (stable mapping, counters, replay),
per-tenant admission (quota order, typed errors, starvation
prevention via pending caps), the resizable worker fleet, the
metrics-driven autoscaler, and the serving-tier additions to the
service primitives (breaker probes, queue-wait histogram, histogram
quantiles).
"""

import threading
import time

import numpy as np
import pytest

from repro.core.config import SwitchPoints
from repro.obs import MetricsRegistry
from repro.serve import (
    PRIORITIES,
    AdmissionController,
    Autoscaler,
    AutoscalerPolicy,
    ScalableWorkerFleet,
    ShardedTuningCache,
    TenantQuota,
)
from repro.service.queue import BoundedRequestQueue, CircuitBreaker
from repro.util.errors import (
    ConfigurationError,
    PriorityShedError,
    ServiceOverloadedError,
    TenantQuotaExceededError,
)

pytestmark = pytest.mark.serve

SWITCH = SwitchPoints(
    stage1_target_systems=16, stage3_system_size=256, thomas_switch=64
)


# ---------------------------------------------------------------------------
# ShardedTuningCache
# ---------------------------------------------------------------------------


class TestShardedCache:
    def test_mapping_is_stable_and_total(self):
        cache = ShardedTuningCache(4)
        for dsize in (4, 8):
            idx = ShardedTuningCache.shard_index(
                f"gtx470|{dsize}|generic", 4
            )
            assert 0 <= idx < 4
            # Same key always lands on the same shard.
            assert idx == ShardedTuningCache.shard_index(
                f"gtx470|{dsize}|generic", 4
            )
        assert len(cache) == 0

    def test_get_put_roundtrip_and_counters(self):
        cache = ShardedTuningCache(4)
        assert cache.get("gtx470", 8) is None
        cache.put("gtx470", 8, SWITCH)
        assert cache.get("gtx470", 8) == SWITCH
        counters = cache.counters()
        assert counters["hits"] == 1
        assert counters["misses"] == 1
        assert counters["entries"] == 1
        # Per-shard counters sum to the aggregate.
        per_shard = cache.shard_counters()
        assert sum(c["hits"] for c in per_shard) == 1
        assert sum(c["misses"] for c in per_shard) == 1

    def test_get_or_tune_tunes_once(self):
        cache = ShardedTuningCache(2)
        calls = []

        def tune():
            calls.append(1)
            return SWITCH

        assert cache.get_or_tune("gtx470", 4, tune) == SWITCH
        assert cache.get_or_tune("gtx470", 4, tune) == SWITCH
        assert len(calls) == 1

    def test_distinct_keys_spread_over_shards(self):
        shards = {
            ShardedTuningCache.shard_index(f"device{i}|8|generic", 8)
            for i in range(64)
        }
        assert len(shards) > 1

    def test_attach_metrics_replays_per_shard(self):
        cache = ShardedTuningCache(2)
        cache.put("gtx470", 8, SWITCH)
        cache.get("gtx470", 8)
        registry = MetricsRegistry()
        cache.attach_metrics(registry)
        metric = registry.get("repro_tuning_cache_lookups_total")
        assert metric is not None
        rendered = registry.render()
        assert 'shard="' in rendered

    def test_contention_counter_counts_concurrent_probes(self):
        cache = ShardedTuningCache(1)
        shard = cache.shard_for("gtx470", 8)
        # Hold the single shard's lock while another thread probes it.
        with shard._lock:
            t = threading.Thread(
                target=lambda: cache.shard_for("gtx470", 8)
            )
            t.start()
            t.join()
        assert cache.counters()["contended"] >= 1

    def test_rejects_bad_shard_count(self):
        with pytest.raises(ConfigurationError):
            ShardedTuningCache(0)

    def test_persistence_roundtrip(self, tmp_path):
        base = tmp_path / "tuned.json"
        cache = ShardedTuningCache(2, base)
        cache.put("gtx470", 8, SWITCH)
        reloaded = ShardedTuningCache(2, base)
        assert reloaded.get("gtx470", 8) == SWITCH


# ---------------------------------------------------------------------------
# AdmissionController
# ---------------------------------------------------------------------------


class TestAdmission:
    def test_admits_until_pending_quota_then_sheds_typed(self):
        ctl = AdmissionController(
            capacity=100, default_quota=TenantQuota(max_pending=2)
        )
        t1 = ctl.admit("a")
        ctl.admit("a")
        with pytest.raises(TenantQuotaExceededError) as err:
            ctl.admit("a")
        assert err.value.tenant == "a"
        assert err.value.quota == "pending"
        # Releasing frees the slot.
        ctl.release(t1)
        ctl.admit("a")

    def test_rate_quota_refills_on_injected_clock(self):
        now = [0.0]
        ctl = AdmissionController(
            capacity=100,
            default_quota=TenantQuota(
                max_pending=100, rate_per_s=10.0, burst=2
            ),
            clock=lambda: now[0],
        )
        ctl.admit("a")
        ctl.admit("a")
        with pytest.raises(TenantQuotaExceededError) as err:
            ctl.admit("a")
        assert err.value.quota == "rate"
        now[0] += 0.1  # one token refilled
        ctl.admit("a")

    def test_priority_watermarks_shed_lowest_class_first(self):
        ctl = AdmissionController(
            capacity=10, default_quota=TenantQuota(max_pending=100)
        )
        # Fill to just under batch's 50% watermark.
        for _ in range(5):
            ctl.admit("a", "interactive")
        # batch is now over its watermark; standard and interactive OK.
        with pytest.raises(PriorityShedError) as err:
            ctl.admit("b", "batch")
        assert err.value.priority == "batch"
        for _ in range(3):
            ctl.admit("b", "standard")
        with pytest.raises(PriorityShedError):
            ctl.admit("b", "standard")  # 8/10 = standard's 80% ceiling
        ctl.admit("b", "interactive")
        ctl.admit("b", "interactive")
        with pytest.raises(PriorityShedError) as err:
            ctl.admit("b", "interactive")  # the tier is genuinely full
        assert err.value.priority == "interactive"

    def test_tenant_default_priority_and_override(self):
        ctl = AdmissionController(
            capacity=10,
            quotas={"batchy": TenantQuota(priority="batch")},
        )
        assert ctl.admit("batchy").priority == "batch"
        assert ctl.admit("batchy", "interactive").priority == "interactive"

    def test_snapshot_and_pending(self):
        ctl = AdmissionController(capacity=10)
        ctl.admit("a", "interactive")
        ctl.admit("b", "batch")
        assert ctl.pending() == 2
        assert ctl.pending("a") == 1
        snap = ctl.snapshot()
        assert snap["by_priority"]["interactive"] == 1
        assert snap["by_tenant"] == {"a": 1, "b": 1}

    def test_metrics_count_admits_and_sheds(self):
        registry = MetricsRegistry()
        ctl = AdmissionController(
            capacity=10, default_quota=TenantQuota(max_pending=1)
        )
        ctl.attach_metrics(registry)
        ctl.admit("a")
        with pytest.raises(TenantQuotaExceededError):
            ctl.admit("a")
        admitted = registry.get("repro_serve_admitted_total")
        shed = registry.get("repro_serve_shed_total")
        assert admitted.value(tenant="a", priority="standard") == 1
        assert shed.value(tenant="a", reason="tenant_pending") == 1

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            AdmissionController(capacity=0)
        with pytest.raises(ConfigurationError):
            TenantQuota(max_pending=0)
        with pytest.raises(ConfigurationError):
            TenantQuota(priority="urgent")
        with pytest.raises(ConfigurationError):
            AdmissionController(watermarks={"urgent": 1.0})
        with pytest.raises(ConfigurationError):
            AdmissionController().admit("a", "urgent")

    def test_priorities_ordering_is_documented(self):
        assert PRIORITIES == ("batch", "standard", "interactive")


# ---------------------------------------------------------------------------
# ScalableWorkerFleet
# ---------------------------------------------------------------------------


class TestFleet:
    def test_executes_submitted_work(self):
        fleet = ScalableWorkerFleet(2)
        try:
            futures = [fleet.submit(lambda v=i: v * v) for i in range(8)]
            assert sorted(f.result(timeout=5) for f in futures) == [
                i * i for i in range(8)
            ]
        finally:
            fleet.shutdown()

    def test_resize_up_and_down(self):
        fleet = ScalableWorkerFleet(1)
        try:
            assert fleet.resize(4) == 3
            assert fleet.size == 4
            assert fleet.resize(2) == -2
            assert fleet.size == 2
            # Still serves work after shrinking.
            assert fleet.submit(lambda: 42).result(timeout=5) == 42
        finally:
            fleet.shutdown()

    def test_shrink_does_not_interrupt_running_work(self):
        fleet = ScalableWorkerFleet(2)
        release = threading.Event()
        try:
            slow = fleet.submit(release.wait, 5)
            fleet.resize(1)
            release.set()
            assert slow.result(timeout=5) is True
        finally:
            fleet.shutdown()

    def test_gauge_tracks_width(self):
        registry = MetricsRegistry()
        fleet = ScalableWorkerFleet(2)
        try:
            fleet.attach_metrics(registry)
            gauge = registry.get("repro_serve_fleet_workers")
            assert gauge.value() == 2
            fleet.resize(5)
            assert gauge.value() == 5
        finally:
            fleet.shutdown()
            assert gauge.value() == 0

    def test_shutdown_is_idempotent_and_rejects_after(self):
        fleet = ScalableWorkerFleet(1)
        fleet.shutdown()
        fleet.shutdown()
        with pytest.raises(ConfigurationError):
            fleet.submit(lambda: 1)
        with pytest.raises(ConfigurationError):
            fleet.resize(2)

    def test_worker_exceptions_propagate_via_future(self):
        fleet = ScalableWorkerFleet(1)
        try:

            def boom():
                raise ValueError("nope")

            with pytest.raises(ValueError):
                fleet.submit(boom).result(timeout=5)
        finally:
            fleet.shutdown()


# ---------------------------------------------------------------------------
# Autoscaler
# ---------------------------------------------------------------------------


class _FakeFleet:
    def __init__(self, size=2):
        self._size = size
        self.resizes = []

    @property
    def size(self):
        return self._size

    def resize(self, n):
        self.resizes.append(n)
        self._size = n


class TestAutoscaler:
    def _setup(self, policy=None):
        registry = MetricsRegistry()
        depth = registry.gauge(Autoscaler.DEPTH_METRIC, "")
        hist = registry.histogram(Autoscaler.LATENCY_METRIC, "")
        fleet = _FakeFleet(2)
        scaler = Autoscaler(fleet, registry, policy)
        return registry, depth, hist, fleet, scaler

    def test_scales_up_proportionally_on_backlog(self):
        _, depth, _, fleet, scaler = self._setup(
            AutoscalerPolicy(max_workers=16, target_queue_per_worker=4.0)
        )
        depth.set(40.0)  # 40 queued / target 4 => wants 10 workers
        decision = scaler.tick()
        assert decision.action == "up"
        assert decision.reason == "queue_depth"
        assert fleet.size == 10

    def test_scales_up_on_latency_slo_breach(self):
        _, depth, hist, fleet, scaler = self._setup(
            AutoscalerPolicy(max_workers=8, latency_slo_ms=10.0)
        )
        depth.set(1.0)  # no backlog
        for _ in range(100):
            hist.observe(50.0)  # p99 far over the 10 ms SLO
        decision = scaler.tick()
        assert decision.action == "up"
        assert decision.reason == "latency_slo"
        assert fleet.size == 3

    def test_scales_down_slowly_after_calm_ticks(self):
        _, depth, _, fleet, scaler = self._setup(
            AutoscalerPolicy(idle_ticks_down=3, cooldown_ticks=0)
        )
        fleet._size = 4
        depth.set(0.0)
        actions = [scaler.tick().action for _ in range(3)]
        assert actions == ["hold", "hold", "down"]
        assert fleet.size == 3

    def test_cooldown_suppresses_flapping(self):
        _, depth, _, fleet, scaler = self._setup(
            AutoscalerPolicy(max_workers=16, cooldown_ticks=2)
        )
        depth.set(100.0)
        assert scaler.tick().action == "up"
        assert scaler.tick().reason == "cooldown"
        assert scaler.tick().reason == "cooldown"
        assert scaler.tick().action in ("up", "hold")

    def test_respects_max_workers(self):
        _, depth, _, fleet, scaler = self._setup(
            AutoscalerPolicy(max_workers=4, cooldown_ticks=0)
        )
        depth.set(10_000.0)
        scaler.tick()
        assert fleet.size == 4
        assert scaler.tick().reason in ("at_max", "cooldown")

    def test_decisions_recorded_as_metrics_and_spans(self):
        from repro.obs import Tracer

        registry = MetricsRegistry()
        depth = registry.gauge(Autoscaler.DEPTH_METRIC, "")
        tracer = Tracer()
        fleet = _FakeFleet(1)
        scaler = Autoscaler(
            fleet,
            registry,
            AutoscalerPolicy(max_workers=8),
            tracer=tracer,
        )
        depth.set(50.0)
        scaler.tick(now_ms=123.0)
        counter = registry.get("repro_serve_autoscaler_decisions_total")
        assert counter.value(action="up") == 1
        gauge = registry.get("repro_serve_autoscaler_target_workers")
        assert gauge.value() > 1
        spans = [s for s in tracer.spans() if s.category == "autoscale"]
        assert len(spans) == 1
        assert spans[0].attr("action") == "up"

    def test_policy_validation(self):
        with pytest.raises(ConfigurationError):
            AutoscalerPolicy(min_workers=0)
        with pytest.raises(ConfigurationError):
            AutoscalerPolicy(min_workers=8, max_workers=4)
        with pytest.raises(ConfigurationError):
            AutoscalerPolicy(target_queue_per_worker=0.0)


# ---------------------------------------------------------------------------
# Serving-tier additions to the service primitives
# ---------------------------------------------------------------------------


class TestBreakerProbes:
    def test_multi_probe_half_open_requires_streak(self):
        now = [0.0]
        brk = CircuitBreaker(
            failure_threshold=1,
            cooldown_s=1.0,
            clock=lambda: now[0],
            half_open_probes=3,
        )
        brk.record_failure()
        assert brk.state == "open"
        now[0] += 1.0
        assert brk.state == "half_open"
        brk.record_success()
        assert brk.state == "half_open"  # 1/3 probes
        brk.record_success()
        assert brk.state == "half_open"  # 2/3 probes
        brk.record_success()
        assert brk.state == "closed"
        assert brk.probe_ok == 3

    def test_probe_failure_reopens_and_resets_streak(self):
        now = [0.0]
        brk = CircuitBreaker(
            failure_threshold=1,
            cooldown_s=1.0,
            clock=lambda: now[0],
            half_open_probes=2,
        )
        brk.record_failure()
        now[0] += 1.0
        brk.record_success()  # probe 1 ok
        brk.record_failure()  # probe fails: back to open
        assert brk.state == "open"
        assert brk.probe_fail == 1
        now[0] += 1.0
        brk.record_success()
        brk.record_success()  # needs the full streak again
        assert brk.state == "closed"

    def test_probe_metrics_replay_on_attach(self):
        now = [0.0]
        brk = CircuitBreaker(
            failure_threshold=1, cooldown_s=0.0, clock=lambda: now[0],
            half_open_probes=2,
        )
        brk.record_failure()
        brk.record_success()  # half-open probe (cooldown 0)
        registry = MetricsRegistry()
        brk.attach_metrics(registry)
        probes = registry.get("repro_service_breaker_probes_total")
        assert probes.value(outcome="probe_ok") == 1

    def test_default_single_probe_closes_immediately(self):
        now = [0.0]
        brk = CircuitBreaker(
            failure_threshold=1, cooldown_s=0.0, clock=lambda: now[0]
        )
        brk.record_failure()
        brk.record_success()
        assert brk.state == "closed"

    def test_rejects_bad_probe_count(self):
        with pytest.raises(ConfigurationError):
            CircuitBreaker(half_open_probes=0)


class TestQueueServing:
    def test_qsize_matches_pending(self):
        q = BoundedRequestQueue(max_pending=4)
        q.put("a")
        q.put("b")
        assert q.qsize() == 2 == q.pending == len(q)
        q.drain()
        assert q.qsize() == 0

    def test_wait_histogram_observes_every_put(self):
        registry = MetricsRegistry()
        q = BoundedRequestQueue(max_pending=4)
        q.attach_metrics(registry)
        q.put("a")
        hist = registry.get("repro_service_queue_wait_ms")
        assert hist.count() == 1

    def test_wait_histogram_records_blocked_time(self):
        registry = MetricsRegistry()
        q = BoundedRequestQueue(max_pending=1, policy="block")
        q.attach_metrics(registry)
        q.put("a")

        def drain_later():
            time.sleep(0.05)
            q.drain()

        t = threading.Thread(target=drain_later)
        t.start()
        q.put("b")  # blocks ~50 ms until the drain
        t.join()
        hist = registry.get("repro_service_queue_wait_ms")
        assert hist.count() == 2
        assert hist.sum() >= 10.0  # the blocked put shows up

    def test_timed_out_put_still_observed(self):
        registry = MetricsRegistry()
        q = BoundedRequestQueue(max_pending=1, policy="block")
        q.attach_metrics(registry)
        q.put("a")
        with pytest.raises(ServiceOverloadedError):
            q.put("b", timeout=0.01)
        hist = registry.get("repro_service_queue_wait_ms")
        assert hist.count() == 2


class TestHistogramQuantile:
    def test_quantile_walks_buckets(self):
        registry = MetricsRegistry()
        hist = registry.histogram("h", "", buckets=(1.0, 10.0, 100.0))
        for v in (0.5, 0.5, 5.0, 50.0):
            hist.observe(v)
        assert hist.quantile(0.5) == 1.0  # 2/4 inside the 1.0 bucket
        assert hist.quantile(0.75) == 10.0
        assert hist.quantile(1.0) == 100.0

    def test_quantile_empty_and_bounds(self):
        registry = MetricsRegistry()
        hist = registry.histogram("h", "")
        assert hist.quantile(0.99) == 0.0
        with pytest.raises(ValueError):
            hist.quantile(1.5)

    def test_quantile_caps_at_last_finite_bound(self):
        registry = MetricsRegistry()
        hist = registry.histogram("h", "", buckets=(1.0, 2.0))
        hist.observe(1000.0)
        assert hist.quantile(0.99) == 2.0
