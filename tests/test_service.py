"""Batched solve service: queue backpressure, golden grouping, stats.

The golden grouping tests pin the batcher's decisions on a fixed request
mix — silent regressions there would otherwise only show up as
throughput drift, never as a wrong answer.
"""

import threading
import time

import numpy as np
import pytest

from repro.core import MultiStageSolver, SwitchPoints, plan_solve
from repro.gpu import make_device
from repro.service import (
    BatchSolveService,
    BoundedRequestQueue,
    GroupKey,
    ServiceRequest,
    group_requests,
)
from repro.systems import generators
from repro.util.errors import ConfigurationError, ServiceOverloadedError

DEVICE = "gtx470"
# Fixed switch points so the golden grouping below is fully deterministic
# (no tuner in the loop).
SWITCH = SwitchPoints(
    stage1_target_systems=16, stage3_system_size=256, thomas_switch=64
)


# ---------------------------------------------------------------------------
# queue
# ---------------------------------------------------------------------------


class TestBoundedRequestQueue:
    def test_fifo_drain(self):
        q = BoundedRequestQueue(max_pending=8)
        for i in range(5):
            q.put(i)
        assert q.pending == 5
        assert q.drain() == [0, 1, 2, 3, 4]
        assert q.pending == 0

    def test_reject_policy_raises_when_full(self):
        q = BoundedRequestQueue(max_pending=2, policy="reject")
        q.put("a")
        q.put("b")
        with pytest.raises(ServiceOverloadedError):
            q.put("c")
        # Draining frees space again.
        q.drain()
        q.put("c")

    def test_block_policy_times_out(self):
        q = BoundedRequestQueue(max_pending=1, policy="block")
        q.put("a")
        with pytest.raises(ServiceOverloadedError):
            q.put("b", timeout=0.05)

    def test_block_policy_unblocks_on_drain(self):
        q = BoundedRequestQueue(max_pending=1, policy="block")
        q.put("a")
        done = threading.Event()

        def producer():
            q.put("b", timeout=5.0)
            done.set()

        t = threading.Thread(target=producer)
        t.start()
        time.sleep(0.02)
        assert not done.is_set()
        q.drain()
        t.join(timeout=5.0)
        assert done.is_set()
        assert q.drain() == ["b"]

    def test_bad_config_rejected(self):
        with pytest.raises(ConfigurationError):
            BoundedRequestQueue(max_pending=0)
        with pytest.raises(ConfigurationError):
            BoundedRequestQueue(policy="drop-newest")


# ---------------------------------------------------------------------------
# golden grouping
# ---------------------------------------------------------------------------


def _requests(mix):
    """Build ServiceRequests for (m, n, dtype) triples under SWITCH."""
    dev = make_device(DEVICE)
    out = []
    for seq, (m, n, dtype) in enumerate(mix):
        batch = generators.random_dominant(m, n, rng=seq, dtype=dtype)
        dsize = batch.dtype.itemsize
        plan = plan_solve(dev, m, n, dsize, SWITCH)
        key = GroupKey(
            device=dev.name,
            dtype=str(batch.dtype),
            system_size=n,
            signature=plan.signature,
        )
        out.append(
            ServiceRequest(seq=seq, batch=batch, device=dev.name, key=key, plan=plan)
        )
    return out


GOLDEN_MIX = [
    (4, 512, np.float64),   # 0: stage-1 split depth 1 (4 < target of 16)
    (16, 512, np.float64),  # 1: fills the machine -> stage-2 only
    (2, 512, np.float64),   # 2: also depth 1 -> merges with request 0
    (8, 100, np.float64),   # 3: pads to 128, fits on-chip
    (1, 100, np.float64),   # 4: same raw size & plan -> merges with 3
    (8, 100, np.float32),   # 5: dtype differs -> own group
    (8, 128, np.float64),   # 6: same padded size as 3 but raw 128 != 100
    (1, 2048, np.float64),  # 7: deep stage-1 split -> own group
    (4, 512, np.float64),   # 8: merges with 0 and 2
    (16, 512, np.float64),  # 9: merges with 1
]

# The documented expectation: groups in order of first member, members in
# submission order. Requests 0/2/8 share a plan signature even though
# their system counts differ (the stage-1 depth their own count implies
# is identical); request 6 shares a *padded* size with 3/4 but raw sizes
# must match for the arrays to stack.
GOLDEN_GROUPS = [
    [0, 2, 8],
    [1, 9],
    [3, 4],
    [5],
    [6],
    [7],
]


class TestGoldenGrouping:
    def test_fixed_mix_groups_exactly(self):
        groups = group_requests(_requests(GOLDEN_MIX))
        got = [[r.seq for r in g.requests] for g in groups]
        assert got == GOLDEN_GROUPS

    def test_group_heights(self):
        groups = group_requests(_requests(GOLDEN_MIX))
        assert [g.num_systems for g in groups] == [10, 32, 9, 8, 8, 1]

    def test_max_group_systems_splits_oversized_groups(self):
        groups = group_requests(_requests(GOLDEN_MIX), max_group_systems=8)
        got = [[r.seq for r in g.requests] for g in groups]
        # Requests that would push an open group past 8 systems open fresh
        # groups instead: 8 can't join [0, 2] (4+2+4 > 8), 9 can't join [1]
        # (16 alone already exceeds the cap — a single oversized request
        # still forms its own group), and 4 can't join [3] (8+1 > 8).
        assert got == [[0, 2], [1], [3], [4], [5], [6], [7], [8], [9]]
        assert all(g.num_systems <= 8 or g.num_requests == 1 for g in groups)

    def test_merged_batch_preserves_rows_exactly(self):
        groups = group_requests(_requests(GOLDEN_MIX))
        merged = groups[0].merged_batch()
        offsets = groups[0].offsets()
        for req, off in zip(groups[0].requests, offsets):
            rows = slice(off, off + req.batch.num_systems)
            np.testing.assert_array_equal(merged.b[rows], req.batch.b)
            np.testing.assert_array_equal(merged.d[rows], req.batch.d)


# ---------------------------------------------------------------------------
# the service
# ---------------------------------------------------------------------------


class TestBatchSolveService:
    def test_solve_many_matches_direct_and_counts(self):
        batches = [
            generators.random_dominant(m, n, rng=i)
            for i, (m, n) in enumerate([(4, 512), (2, 512), (16, 512), (8, 100)])
        ]
        with BatchSolveService(DEVICE, SWITCH, max_workers=2) as svc:
            results = svc.solve_many(batches)
            direct = MultiStageSolver(DEVICE, SWITCH)
            for batch, res in zip(batches, results):
                np.testing.assert_array_equal(direct.solve(batch).x, res.x)
            snap = svc.stats.snapshot()
        assert snap["requests_submitted"] == 4
        assert snap["requests_completed"] == 4
        assert snap["groups_executed"] == 3  # (4,512)+(2,512) merge
        assert snap["requests_failed"] == 0

    def test_result_carries_group_provenance(self):
        batches = [generators.random_dominant(4, 512, rng=i) for i in range(3)]
        with BatchSolveService(DEVICE, SWITCH) as svc:
            results = svc.solve_many(batches)
        assert all(r.group_requests == 3 for r in results)
        assert all(r.group_systems == 12 for r in results)
        assert results[0].simulated_ms == results[1].simulated_ms

    def test_reject_backpressure_counts_rejections(self):
        svc = BatchSolveService(
            DEVICE, SWITCH, max_pending=2, overflow="reject"
        )
        with svc:
            b = generators.random_dominant(1, 64, rng=0)
            svc.submit(b)
            svc.submit(b)
            with pytest.raises(ServiceOverloadedError):
                svc.submit(b)
            assert svc.stats.snapshot()["requests_rejected"] == 1
            svc.flush()
            svc.submit(b)  # space again after the flush drained the queue
        assert svc.stats.snapshot()["requests_completed"] == 3

    def test_auto_flush_dispatches_without_explicit_flush(self):
        with BatchSolveService(DEVICE, SWITCH, auto_flush=2) as svc:
            b = generators.random_dominant(2, 128, rng=1)
            f1 = svc.submit(b)
            f2 = svc.submit(b)  # hits the auto_flush threshold
            assert f1.result(timeout=30).x.shape == (2, 128)
            assert f2.result(timeout=30).x.shape == (2, 128)

    def test_failed_group_propagates_to_every_future(self):
        # Exactly singular systems are rejected typed at submit now, so
        # the poison here is a *valid* but hopeless batch: near-singular
        # with a tolerance the escalation ladder cannot reach. The
        # merged solve raises typed, the group bisects, and every member
        # future observes its own failure.
        bad = generators.ill_conditioned(2, 64, epsilon=1e-13, rng=0)
        with BatchSolveService(DEVICE, SWITCH) as svc:
            futures = [
                svc.submit(bad, tolerance=1e-12),
                svc.submit(bad, tolerance=1e-12),
            ]
            svc.flush()
            for fut in futures:
                with pytest.raises(Exception):
                    fut.result(timeout=30)
            svc.drain()
        assert svc.stats.snapshot()["requests_failed"] == 2

    def test_singular_rejected_typed_at_submit(self):
        from repro.util.errors import InvalidSystemError

        with BatchSolveService(DEVICE, SWITCH) as svc:
            with pytest.raises(InvalidSystemError):
                svc.submit(generators.singular(2, 64))
        assert svc.metrics.get("repro_service_invalid_total").total() == 1

    def test_submit_after_close_raises(self):
        svc = BatchSolveService(DEVICE, SWITCH)
        svc.close()
        with pytest.raises(Exception):
            svc.submit(generators.random_dominant(1, 64, rng=0))

    def test_per_group_stats_labels(self):
        batches = [
            generators.random_dominant(2, 128, rng=0),
            generators.random_dominant(2, 128, rng=1, dtype=np.float32),
        ]
        with BatchSolveService(DEVICE, SWITCH) as svc:
            svc.solve_many(batches)
            snap = svc.stats.snapshot()
        labels = set(snap["per_group"])
        assert labels == {
            "GeForce GTX 470|float64|n=128",
            "GeForce GTX 470|float32|n=128",
        }
        describe = svc.stats.describe()
        assert "2 merged solves" in describe


# ---------------------------------------------------------------------------
# stress (nightly)
# ---------------------------------------------------------------------------


@pytest.mark.slow
def test_service_1k_request_stress():
    """1k mixed requests: >= 5x simulated throughput, answers bit-identical."""
    requests = generators.mixed_requests(1000, rng=7)
    with BatchSolveService(
        DEVICE, "static", max_workers=8, max_pending=1000
    ) as svc:
        results = svc.solve_many(requests)
        batched_ms = svc.stats.simulated_ms
        solvers = {
            dt: MultiStageSolver(DEVICE, svc.switch_points_for(dtype=np.dtype(dt)))
            for dt in ("float32", "float64")
        }
    sequential_ms = 0.0
    for batch, res in zip(requests, results):
        direct = solvers[str(batch.dtype)].solve(batch)
        sequential_ms += direct.report.total_ms
        np.testing.assert_array_equal(direct.x, res.x)
    assert sequential_ms / batched_ms >= 5.0
