"""Seeded chaos campaigns: the end-to-end recovery guarantee.

A campaign hammers the batched service with mixed requests under
transient kernel faults, worker stalls, tight deadlines, and poisoned
(singular) systems, then runs the distributed solver while one of its
devices dies mid-run. The guarantee under audit: every request returns
a residual-verified solution or a typed error — never a silently wrong
answer — and the failover still solves everything on the survivors
with its overhead priced.

The fast tier runs one small seeded campaign (``-m chaos`` selects it
on its own); the multi-seed acceptance sweep at full size is marked
``slow`` and runs nightly alongside ``benchmarks/bench_chaos.py``.
"""

import pytest

from repro.faults import run_campaign, run_sweep

pytestmark = [
    pytest.mark.chaos,
    pytest.mark.filterwarnings("ignore::RuntimeWarning"),
]


def _audit(report):
    assert report.clean, f"campaign violated the guarantee: {report.describe()}"
    assert report.silent_wrong == 0
    assert report.untyped_errors == 0
    # Every request is accounted for by exactly one typed outcome.
    assert (
        report.solved
        + report.typed_errors
        + report.deadline_expired
        + report.shed
        == report.requests
    )
    # The failover phase lost a device and still solved everything.
    assert report.failover["solved"] == report.failover["solves"]
    assert report.failover["failovers"] >= 1
    assert report.failover["recovery_overhead_ms"] > 0.0


def test_small_seeded_campaign_is_clean():
    """Fast-tier smoke: one seed, 60 requests, full fault mix."""
    report = run_campaign(0, requests=60)
    _audit(report)
    assert report.requests == 60
    # The mix actually exercised the recovery paths.
    assert report.typed_errors > 0
    assert report.deadline_expired > 0
    assert report.fault_summary["counts"]


def test_campaigns_are_deterministic_per_seed():
    first = run_campaign(3, requests=40)
    second = run_campaign(3, requests=40)
    assert first.as_dict() == second.as_dict()


@pytest.mark.slow
def test_acceptance_sweep_multi_seed_full_size():
    """Nightly acceptance bar: >= 3 seeds x >= 200 requests, all clean."""
    for report in run_sweep((0, 1, 2), requests=200):
        _audit(report)
