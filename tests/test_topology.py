"""Tests for the simulated interconnect (links, topologies, device groups)."""

import pytest

from repro.dist import (
    LINK_PRESETS,
    DeviceGroup,
    Interconnect,
    LinkSpec,
    get_link,
    make_device_group,
)
from repro.gpu import make_device
from repro.util.errors import ConfigurationError


class TestLinkSpec:
    def test_transfer_is_latency_plus_bandwidth_term(self):
        link = LinkSpec("test", bandwidth_gb_s=10.0, latency_us=5.0)
        # 10 GB/s = 1e7 bytes/ms; 5 us = 0.005 ms.
        assert link.transfer_ms(0.0) == pytest.approx(0.005)
        assert link.transfer_ms(1e7) == pytest.approx(1.005)

    def test_hops_multiply_store_and_forward(self):
        link = LinkSpec("test", bandwidth_gb_s=10.0, latency_us=5.0)
        one = link.transfer_ms(4096)
        assert link.transfer_ms(4096, hops=3) == pytest.approx(3 * one)
        assert link.transfer_ms(4096, hops=0) == 0.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            LinkSpec("bad", bandwidth_gb_s=0.0, latency_us=1.0)
        with pytest.raises(ConfigurationError):
            LinkSpec("bad", bandwidth_gb_s=1.0, latency_us=-1.0)
        with pytest.raises(ConfigurationError):
            LinkSpec("x", 1.0, 1.0).transfer_ms(-1)

    def test_presets_and_overrides(self):
        assert set(LINK_PRESETS) == {"pcie3", "pcie4", "nvlink2"}
        assert get_link("pcie3").bandwidth_gb_s == 12.0
        assert get_link(get_link("pcie4")) is get_link("pcie4")
        with pytest.raises(ConfigurationError):
            get_link("infiniband")
        slow = get_link("pcie3").with_(latency_us=100.0)
        assert slow.latency_us == 100.0
        assert slow.bandwidth_gb_s == get_link("pcie3").bandwidth_gb_s


class TestInterconnect:
    def test_all_to_all_is_one_hop(self):
        net = Interconnect(get_link("pcie3"), "all_to_all")
        assert net.hops(0, 5, 8) == 1
        assert net.hops(3, 3, 8) == 0

    def test_ring_takes_the_shorter_arc(self):
        net = Interconnect(get_link("pcie3"), "ring")
        assert net.hops(0, 1, 8) == 1
        assert net.hops(0, 7, 8) == 1  # wraps backwards
        assert net.hops(0, 4, 8) == 4  # antipode
        assert net.hops(0, 5, 8) == 3
        assert net.hops(6, 1, 8) == 3

    def test_bad_indices_and_kind(self):
        net = Interconnect(get_link("pcie3"), "ring")
        with pytest.raises(ConfigurationError):
            net.hops(0, 8, 8)
        with pytest.raises(ConfigurationError):
            Interconnect(get_link("pcie3"), "torus")

    def test_describe(self):
        assert Interconnect(get_link("nvlink2"), "ring").describe() == "ring:nvlink2"


class TestDeviceGroup:
    def test_make_and_iterate(self):
        group = make_device_group("gtx470", 4)
        assert len(group) == 4
        assert group.device_name == group[0].name
        assert all(d.name == group.device_name for d in group)
        assert "x4" in group.describe()

    def test_signature_keys_behaviour(self):
        a = make_device_group("gtx470", 4, "pcie3", "all_to_all")
        b = make_device_group("gtx470", 4, "pcie3", "all_to_all")
        assert a.signature == b.signature
        assert a.signature != make_device_group("gtx470", 8).signature
        assert (
            a.signature
            != make_device_group("gtx470", 4, "pcie3", "ring").signature
        )

    def test_must_be_homogeneous(self):
        with pytest.raises(ConfigurationError):
            DeviceGroup(
                [make_device("gtx470"), make_device("gtx280")],
                Interconnect(get_link("pcie3")),
            )
        with pytest.raises(ConfigurationError):
            make_device_group("gtx470", 0)
