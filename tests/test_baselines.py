"""Tests for the comparator solvers (MKL CPU, Zhang, global-only, Sakharnykh)."""

import pytest

from repro.algorithms import max_residual
from repro.baselines import (
    CpuSpec,
    GlobalPcrSolver,
    MklLikeCpuSolver,
    SakharnykhSolver,
    ZhangCrPcrSolver,
)
from repro.core import MultiStageSolver
from repro.systems import generators
from repro.util.errors import ConfigurationError, ResourceExhaustedError


class TestMklCpu:
    def test_numerics(self):
        batch = generators.random_dominant(8, 200, rng=0)
        result = MklLikeCpuSolver().solve(batch)
        assert max_residual(batch, result.x) < 1e-12
        assert result.threads_used == 2

    def test_single_system_single_thread(self):
        """Figure 8: 'the MKL solver is sequential' for one system."""
        batch = generators.random_dominant(1, 64, rng=1)
        result = MklLikeCpuSolver().solve(batch)
        assert result.threads_used == 1

    def test_paper_calibration_points(self):
        """Modelled times track the paper's MKL measurements (±15%)."""
        cpu = MklLikeCpuSolver()
        targets = {
            (1024, 1024): 10.70,
            (2048, 2048): 37.9,
            (4096, 4096): 168.3,
            (1, 1 << 21): 34.0,
        }
        for (m, n), expected in targets.items():
            got = cpu.modeled_time_ms(m, n, 4)
            # The paper's own 2K×2K point implies a faster per-equation
            # rate than its 1K/4K points; 25% covers that inconsistency.
            assert abs(got - expected) / expected < 0.25, ((m, n), got)

    def test_parallel_scaling_bounds(self):
        cpu = MklLikeCpuSolver()
        one = cpu.modeled_time_ms(1, 4096, 4)
        many = cpu.modeled_time_ms(64, 4096, 4)
        # 64 systems on two cores at 77% efficiency.
        assert many == pytest.approx(64 * one / (2 * 0.77), rel=0.05)

    def test_spec_validation(self):
        with pytest.raises(ConfigurationError):
            CpuSpec("x", cores=0, ns_per_equation=1, call_overhead_us=0)
        with pytest.raises(ConfigurationError):
            CpuSpec("x", cores=2, ns_per_equation=-1, call_overhead_us=0)
        with pytest.raises(ConfigurationError):
            CpuSpec(
                "x",
                cores=2,
                ns_per_equation=1,
                call_overhead_us=0,
                parallel_efficiency=1.5,
            )


class TestZhangSolver:
    def test_solves_onchip_systems(self):
        solver = ZhangCrPcrSolver("gtx280")
        batch = generators.random_dominant(32, 512, rng=2)
        result = solver.solve(batch)
        assert max_residual(batch, result.x) < 1e-12
        assert result.simulated_ms > 0

    def test_refuses_oversized_systems(self):
        """The limitation that motivates the paper's multi-stage design."""
        solver = ZhangCrPcrSolver("gtx280")  # on-chip max 512
        batch = generators.random_dominant(4, 1024, rng=3)
        with pytest.raises(ResourceExhaustedError):
            solver.solve(batch)

    def test_max_size_tracks_device(self):
        assert ZhangCrPcrSolver("8800gtx").max_system_size(4) == 256
        assert ZhangCrPcrSolver("gtx470").max_system_size(4) == 1024

    def test_multistage_handles_what_zhang_cannot(self):
        batch = generators.random_dominant(4, 4096, rng=4)
        with pytest.raises(ResourceExhaustedError):
            ZhangCrPcrSolver("gtx470").solve(batch)
        result = MultiStageSolver("gtx470", "default").solve(batch)
        assert max_residual(batch, result.x) < 1e-12


class TestGlobalOnlySolver:
    def test_numerics(self):
        batch = generators.random_dominant(16, 256, rng=5)
        result = GlobalPcrSolver("gtx470").solve(batch)
        assert max_residual(batch, result.x) < 1e-11

    def test_slower_than_multistage_on_smem_sized_systems(self):
        """Egloff's observation: skipping shared memory costs dearly."""
        m, n = 512, 512
        dev = "gtx470"
        batch = generators.random_dominant(m, n, rng=6)
        global_ms = GlobalPcrSolver(dev).solve(batch).simulated_ms
        staged_ms = MultiStageSolver(dev, "static").solve(batch).simulated_ms
        assert global_ms > 1.5 * staged_ms

    def test_one_launch_per_level_plus_divide(self):
        batch = generators.random_dominant(8, 64, rng=7)
        result = GlobalPcrSolver("gtx470").solve(batch)
        assert result.report.num_launches == 6 + 1  # log2(64) + divide


class TestSakharnykhSolver:
    def test_numerics(self):
        batch = generators.random_dominant(64, 1024, rng=8)
        result = SakharnykhSolver("gtx470").solve(batch)
        assert max_residual(batch, result.x) < 1e-12

    def test_good_at_many_small_bad_at_few_large(self):
        """§III-A: thread-level parallelism only suits many small systems."""
        dev = "gtx470"
        many_small = generators.random_dominant(4096, 64, rng=9)
        few_large = generators.random_dominant(2, 131072, rng=10)

        sak_many = SakharnykhSolver(dev).solve(many_small).simulated_ms
        our_many = MultiStageSolver(dev, "static").solve(many_small).simulated_ms
        sak_large = SakharnykhSolver(dev).solve(few_large).simulated_ms
        our_large = MultiStageSolver(dev, "static").solve(few_large).simulated_ms

        # Competitive (within 3x) on many small systems...
        assert sak_many < 3 * our_many
        # ...but far behind on few large ones.
        assert sak_large > 2 * our_large

    def test_small_systems_skip_split(self):
        batch = generators.random_dominant(256, 64, rng=11)
        result = SakharnykhSolver("gtx470", thread_system_size=64).solve(batch)
        assert result.report.num_launches == 1
