"""CI gate: every ``python`` code fence in ``docs/*.md`` must execute.

The docs are part of the tested surface — a snippet that drifts from the
API fails here, not on a reader's machine. Rules:

- a fence whose info string is exactly ``python`` is executed;
- ``python skip`` marks a fence as illustrative (not executed) — used
  for pseudo-code, error-raising examples, and output listings;
- blocks in one file run cumulatively in a shared namespace, top to
  bottom, so later snippets may use names earlier ones defined.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

DOCS_DIR = Path(__file__).resolve().parent.parent / "docs"
DOC_PAGES = sorted(DOCS_DIR.glob("*.md"))

_FENCE = re.compile(r"^```(.*)$")


def extract_blocks(text: str):
    """Yield ``(start_line, info_string, code)`` for each fenced block."""
    lines = text.splitlines()
    i = 0
    while i < len(lines):
        match = _FENCE.match(lines[i])
        if match and not match.group(1).startswith("`"):
            info = match.group(1).strip()
            start = i + 2  # 1-based line number of the code's first line
            body = []
            i += 1
            while i < len(lines) and not lines[i].startswith("```"):
                body.append(lines[i])
                i += 1
            yield start, info, "\n".join(body)
        i += 1


def python_blocks(path: Path):
    """The executable blocks of one docs page (skip-marked ones dropped)."""
    return [
        (lineno, code)
        for lineno, info, code in extract_blocks(path.read_text(encoding="utf-8"))
        if info == "python"
    ]


def test_docs_directory_has_pages():
    assert DOC_PAGES, f"no docs pages found under {DOCS_DIR}"


def test_observability_page_is_doctested():
    # The observability guide must carry executable examples — the page
    # documents metric names and exporter formats that drift silently
    # without this.
    page = DOCS_DIR / "observability.md"
    assert page.exists()
    assert python_blocks(page), "observability.md has no executable snippets"


@pytest.mark.parametrize("path", DOC_PAGES, ids=lambda p: p.name)
def test_docs_snippets_execute(path):
    blocks = python_blocks(path)
    if not blocks:
        pytest.skip(f"{path.name} has no executable python fences")
    namespace = {"__name__": f"docs_snippet_{path.stem}"}
    for lineno, code in blocks:
        source = "\n" * (lineno - 1) + code  # real line numbers in tracebacks
        try:
            exec(compile(source, str(path), "exec"), namespace)
        except Exception as exc:  # pragma: no cover - failure reporting
            pytest.fail(
                f"{path.name} snippet at line {lineno} raised "
                f"{type(exc).__name__}: {exc}"
            )
