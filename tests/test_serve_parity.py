"""Parity and fairness properties of the async serving tier.

The tier's two headline promises, pinned property-style:

1. **Facade parity** — the asyncio frontend and the sync facade are the
   same code path, so a seeded request stream produces *identical group
   assignments* and *bit-identical solutions* whichever door it enters
   through (and both match a standalone solver).
2. **No starvation** — a saturating high-priority tenant is capped by
   its own pending quota, so a low-priority tenant keeps making
   progress instead of being shed forever.
"""

import asyncio

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import MultiStageSolver, SwitchPoints
from repro.serve import (
    AdmissionController,
    AsyncSolveService,
    TenantQuota,
)
from repro.systems import generators
from repro.util.errors import ServiceOverloadedError

pytestmark = pytest.mark.serve

COMMON = dict(max_examples=15, deadline=None)

DEVICE = "gtx470"
SWITCH = SwitchPoints(
    stage1_target_systems=16, stage3_system_size=256, thomas_switch=64
)


@st.composite
def request_batches(draw):
    """One serving request: random shape, dtype, and conditioning."""
    n = draw(st.integers(min_value=2, max_value=300))
    m = draw(st.integers(min_value=1, max_value=6))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    dtype = draw(st.sampled_from([np.float32, np.float64]))
    dominance = draw(st.floats(min_value=1.05, max_value=4.0))
    return generators.random_dominant(
        m, n, dominance=dominance, rng=seed, dtype=dtype
    )


def _service(**kwargs):
    return AsyncSolveService(DEVICE, SWITCH, workers=2, num_shards=4, **kwargs)


@settings(**COMMON)
@given(batches=st.lists(request_batches(), min_size=1, max_size=8))
def test_sync_facade_and_async_frontend_are_bit_identical(batches):
    """Same stream, both doors: identical groups, identical bits."""
    with _service() as sync_svc:
        sync_results = sync_svc.solve_many_sync(batches)

    async def drive():
        async with _service() as async_svc:
            return await async_svc.solve_many(batches)

    async_results = asyncio.run(drive())

    assert len(sync_results) == len(async_results) == len(batches)
    for sync_res, async_res in zip(sync_results, async_results):
        # Identical group assignment: same merged group, same shape.
        assert sync_res.group_label == async_res.group_label
        assert sync_res.group_requests == async_res.group_requests
        assert sync_res.group_systems == async_res.group_systems
        # Bit-identical numbers.
        assert sync_res.x.dtype == async_res.x.dtype
        np.testing.assert_array_equal(sync_res.x, async_res.x)


@settings(**COMMON)
@given(batches=st.lists(request_batches(), min_size=1, max_size=6))
def test_serving_tier_matches_standalone_solver(batches):
    """The serving tier adds admission/sharding/autoscaling around the
    service — never around the numbers."""
    with _service(autoscale=True) as svc:
        results = svc.solve_many_sync(batches)
    for batch, res in zip(batches, results):
        direct = MultiStageSolver(DEVICE, SWITCH).solve(batch)
        assert res.x.dtype == direct.x.dtype
        np.testing.assert_array_equal(direct.x, res.x)


def test_low_priority_tenant_progresses_under_saturation():
    """A hog tenant saturating its quota cannot starve a meek one.

    The hog (interactive class) floods far past its own pending cap;
    every overflow is shed *against the hog's quota*, leaving capacity
    under every watermark, so the meek tenant's batch-class requests
    keep being admitted and keep completing.
    """
    admission = AdmissionController(
        capacity=32,
        quotas={
            "hog": TenantQuota(max_pending=8, priority="interactive"),
            "meek": TenantQuota(max_pending=4, priority="batch"),
        },
    )
    meek_completed = 0
    hog_shed = 0
    with _service(admission=admission) as svc:
        for round_no in range(5):
            futures = []
            # The hog floods: 12 submissions against a pending cap of 8.
            for i in range(12):
                batch = generators.random_dominant(
                    1, 64, rng=1000 * round_no + i
                )
                try:
                    futures.append(svc.submit_sync(batch, tenant="hog"))
                except ServiceOverloadedError:
                    hog_shed += 1
            # The meek tenant asks for a little, at the *lowest* class.
            meek_futures = []
            for i in range(2):
                batch = generators.random_dominant(
                    1, 64, rng=5000 + 100 * round_no + i
                )
                meek_futures.append(svc.submit_sync(batch, tenant="meek"))
            svc.flush()
            svc.drain()
            for fut in meek_futures:
                assert fut.exception() is None
                meek_completed += 1
            for fut in futures:
                assert fut.exception() is None

    assert hog_shed > 0  # the hog really did saturate its quota
    assert meek_completed == 10  # and the meek tenant never starved


def test_admission_sheds_before_anything_is_queued():
    """A shed request must leave no trace in the service queue."""
    admission = AdmissionController(
        capacity=8, default_quota=TenantQuota(max_pending=1)
    )
    with _service(admission=admission) as svc:
        batch = generators.random_dominant(1, 32, rng=0)
        svc.submit_sync(batch, tenant="a")
        before = svc.stats.snapshot()["requests_submitted"]
        with pytest.raises(ServiceOverloadedError):
            svc.submit_sync(batch, tenant="a")
        assert svc.stats.snapshot()["requests_submitted"] == before
        assert svc.stats.snapshot()["requests_shed"] == 1
        svc.flush()
        svc.drain()
        # The settled future released the ticket: admission is open again.
        svc.submit_sync(batch, tenant="a")
        svc.flush()
