"""Integration tests for the multi-stage solver across devices/workloads."""

import numpy as np
import pytest

from repro.algorithms import max_residual, scipy_banded_solve
from repro.core import (
    MultiStageSolver,
    SelfTuner,
    SwitchPoints,
    simulate_plan,
    solve,
)
from repro.gpu import make_device
from repro.systems import generators
from repro.util.errors import ConfigurationError, DeviceError
from tests.conftest import assert_close_to_oracle

DEVICES = ("8800gtx", "gtx280", "gtx470")


class TestCorrectness:
    @pytest.mark.parametrize("device", DEVICES)
    @pytest.mark.parametrize(
        "shape",
        [(64, 32), (16, 256), (8, 1024), (4, 4096), (1, 16384)],
    )
    def test_solution_matches_oracle(self, device, shape):
        m, n = shape
        batch = generators.random_dominant(m, n, rng=m * n)
        result = MultiStageSolver(device, "default").solve(batch)
        assert_close_to_oracle(batch, result.x, factor=8)

    @pytest.mark.parametrize("strategy", ["default", "static", "dynamic"])
    def test_all_strategies_correct(self, strategy):
        batch = generators.random_dominant(8, 2048, rng=5)
        result = MultiStageSolver("gtx470", strategy).solve(batch)
        assert max_residual(batch, result.x) < 1e-12

    def test_non_pow2_size(self):
        batch = generators.random_dominant(8, 1000, rng=6)
        result = MultiStageSolver("gtx470", "default").solve(batch)
        assert result.x.shape == (8, 1000)
        assert max_residual(batch, result.x) < 1e-12

    def test_float32(self):
        batch = generators.random_dominant(8, 512, rng=7, dtype=np.float32)
        result = MultiStageSolver("gtx280", "default").solve(batch)
        assert result.x.dtype == np.float32
        assert max_residual(batch, result.x) < 1e-4

    def test_structured_workloads(self):
        for gen in ("poisson_1d", "cubic_spline", "ocean_mixing"):
            batch = getattr(generators, gen)(16, 600, rng=1)
            result = MultiStageSolver("gtx470", "static").solve(batch)
            oracle = scipy_banded_solve(batch)
            scale = np.abs(oracle).max() + 1.0
            assert np.abs(result.x - oracle).max() / scale < 1e-9, gen

    def test_verify_flag(self):
        batch = generators.random_dominant(4, 256, rng=8)
        result = MultiStageSolver("gtx470", "default", verify=True).solve(batch)
        assert result.x.shape == batch.shape

    def test_single_tiny_system(self):
        batch = generators.random_dominant(1, 2, rng=9)
        result = solve(batch, device="8800gtx", tuning="default")
        assert max_residual(batch, result.x) < 1e-13


class TestReporting:
    def test_report_timing_matches_pricing(self):
        """simulate_plan and the real solver must agree exactly."""
        batch = generators.random_dominant(16, 2048, rng=10)
        for device in DEVICES:
            sp = SwitchPoints(stage3_system_size=256, thomas_switch=64)
            dev = make_device(device)
            result = MultiStageSolver(dev, sp).solve(batch)
            _, priced = simulate_plan(dev, 16, 2048, 8, sp)
            assert result.simulated_ms == pytest.approx(priced.total_ms), device

    def test_stage_breakdown_present(self):
        batch = generators.random_dominant(1, 1 << 15, rng=11)
        result = MultiStageSolver("gtx470", "default").solve(batch)
        stages = result.report.stage_ms()
        assert "stage1_coop_pcr" in stages
        assert "stage2_global_pcr" in stages
        assert "stage3_pcr_thomas" in stages

    def test_plan_exposed(self):
        batch = generators.random_dominant(4, 8192, rng=12)
        solver = MultiStageSolver("gtx470", "default")
        plan = solver.plan_for(batch)
        result = solver.solve(batch)
        assert result.plan == plan

    def test_switch_points_carried(self):
        batch = generators.random_dominant(4, 512, rng=13)
        result = MultiStageSolver("gtx470", "static").solve(batch)
        assert result.switch_points.source == "static"


class TestConfiguration:
    def test_explicit_switch_points(self):
        sp = SwitchPoints(stage3_system_size=128, thomas_switch=32)
        batch = generators.random_dominant(8, 1024, rng=14)
        result = MultiStageSolver("gtx470", sp).solve(batch)
        assert result.plan.stage3_system_size == 128

    def test_tuner_instance(self):
        tuner = SelfTuner()
        batch = generators.random_dominant(8, 1024, rng=15)
        result = MultiStageSolver("gtx470", tuner).solve(batch)
        assert result.switch_points.source == "dynamic"

    def test_bad_tuning_argument(self):
        with pytest.raises(ConfigurationError):
            MultiStageSolver("gtx470", 3.14)

    def test_unknown_strategy_name(self):
        with pytest.raises(ConfigurationError):
            MultiStageSolver("gtx470", "telepathic")

    def test_oversized_workload_rejected(self):
        dev = make_device("8800gtx")  # 768 MiB of global memory
        with pytest.raises(DeviceError):
            dev.check_fits_global(10**10)


class TestDynamicBeatsOthers:
    """The paper's §V headline ordering, asserted per workload."""

    @pytest.mark.parametrize("device", DEVICES)
    @pytest.mark.parametrize(
        "shape", [(1024, 1024), (2048, 2048), (1, 1 << 21)]
    )
    def test_dynamic_not_worse(self, device, shape):
        m, n = shape
        dev = make_device(device)
        from repro.core import DefaultTuner, MachineQueryTuner

        dyn = SelfTuner().switch_points(dev, m, n, 4)
        _, dyn_rep = simulate_plan(dev, m, n, 4, dyn)
        for other in (DefaultTuner(), MachineQueryTuner()):
            sp = other.switch_points(dev, m, n, 4)
            _, rep = simulate_plan(dev, m, n, 4, sp)
            # Allow 2% slack for hill-climb locality.
            assert dyn_rep.total_ms <= rep.total_ms * 1.02, (
                device,
                shape,
                other.name,
            )
