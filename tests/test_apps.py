"""Tests for the application-level wrappers (ADI, splines, Poisson, ocean)."""

import numpy as np
import pytest
from scipy.interpolate import CubicSpline

from repro.apps import (
    AdiDiffusion2D,
    NaturalSplineBatch,
    PoissonSolver2D,
    VerticalMixingStepper,
    dst1,
    fit_natural_splines,
    idst1,
)
from repro.core import MultiStageSolver
from repro.util.errors import ConfigurationError, ShapeError


@pytest.fixture(scope="module")
def solver():
    return MultiStageSolver("gtx470", "static")


class TestAdi:
    def test_mode_decay_matches_analytic(self, solver):
        n = 64
        adi = AdiDiffusion2D((n, n), alpha=1.0, dx=1.0 / (n + 1), dt=5e-4, solver=solver)
        x = np.linspace(adi.dx, 1.0 - adi.dx, n)
        u = np.outer(np.sin(np.pi * x), np.sin(np.pi * x))
        steps = 20
        u = adi.run(u, steps)
        expected = adi.analytic_mode_decay(1, 1, adi.dt * steps)
        assert u.max() == pytest.approx(expected, rel=2e-3)

    def test_stability_at_large_r(self, solver):
        """ADI is unconditionally stable: even r >> 1 must not blow up."""
        adi = AdiDiffusion2D((32, 32), dt=10.0, dx=0.1, solver=solver)
        assert adi.r > 100
        rng = np.random.default_rng(0)
        u = rng.random((32, 32))
        u = adi.run(u, 5)
        assert np.isfinite(u).all()
        assert np.abs(u).max() <= 1.0 + 1e-9

    def test_rectangular_grid(self, solver):
        adi = AdiDiffusion2D((16, 48), dt=1e-3, solver=solver)
        u = np.ones((16, 48))
        out = adi.step(u)
        assert out.shape == (16, 48)

    def test_second_order_in_time(self, solver):
        """Peaceman-Rachford is O(dt^2): halving dt quarters the error.

        Measured against the *semi-discrete* decay (the discrete
        Laplacian's eigenvalue), which isolates the temporal error from
        the O(dx^2) spatial truncation."""
        n = 48
        dx = 1.0 / (n + 1)
        x = np.linspace(dx, 1.0 - dx, n)
        u0 = np.outer(np.sin(np.pi * x), np.sin(np.pi * x))
        t_final = 8e-3
        lam_h = (2.0 - 2.0 * np.cos(np.pi / (n + 1))) / dx**2
        # The sine mode is an exact eigenvector of the discrete Laplacian,
        # so the semi-discrete solution is u0 * exp(-2 lam_h t) exactly
        # (note u0.max() < 1: no grid node sits at x = 1/2).
        expected = float(u0.max() * np.exp(-2.0 * lam_h * t_final))
        errors = []
        for steps in (4, 8, 16):
            adi = AdiDiffusion2D(
                (n, n), dx=dx, dt=t_final / steps, solver=solver
            )
            u = adi.run(u0.copy(), steps)
            errors.append(abs(u.max() - expected))
        # Each halving of dt should cut the error ~4x (allow 2.5x slack).
        assert errors[1] < errors[0] / 2.5
        assert errors[2] < errors[1] / 2.5

    def test_report_accumulates(self, solver):
        adi = AdiDiffusion2D((16, 16), dt=1e-3, solver=solver)
        adi.run(np.ones((16, 16)), 3)
        assert adi.report.steps == 3
        assert adi.report.sweeps == 6
        assert adi.report.simulated_ms > 0
        assert adi.report.systems_solved == 6 * 16

    def test_validation(self, solver):
        with pytest.raises(ConfigurationError):
            AdiDiffusion2D((1, 5), solver=solver)
        with pytest.raises(ConfigurationError):
            AdiDiffusion2D((8, 8), dt=-1.0, solver=solver)
        adi = AdiDiffusion2D((8, 8), solver=solver)
        with pytest.raises(ShapeError):
            adi.step(np.ones((4, 4)))

    def test_default_device_string(self):
        adi = AdiDiffusion2D((8, 8), solver="gtx280")
        assert "280" in adi.solver.device.name


class TestSpline:
    def test_matches_scipy(self, solver):
        rng = np.random.default_rng(1)
        t = np.sort(rng.uniform(0, 10, 40))
        t[0], t[-1] = 0.0, 10.0
        y = rng.standard_normal((5, 40))
        fit = fit_natural_splines(t, y, solver)
        tq = np.linspace(0, 10, 333)
        for i in range(5):
            ref = CubicSpline(t, y[i], bc_type="natural")(tq)
            np.testing.assert_allclose(fit(tq)[i], ref, atol=1e-10)

    def test_derivative_matches_scipy(self, solver):
        t = np.linspace(0, 1, 20)
        y = np.sin(2 * np.pi * t)[None, :]
        fit = fit_natural_splines(t, y, solver)
        tq = np.linspace(0.05, 0.95, 50)
        ref = CubicSpline(t, y[0], bc_type="natural")(tq, 1)
        np.testing.assert_allclose(fit.derivative(tq)[0], ref, atol=1e-9)

    def test_interpolates_knots(self, solver):
        t = np.linspace(0, 1, 15)
        y = np.cos(t)[None, :]
        fit = fit_natural_splines(t, y, solver)
        np.testing.assert_allclose(fit(t)[0], y[0], atol=1e-12)

    def test_natural_boundary_conditions(self, solver):
        t = np.linspace(0, 1, 12)
        y = np.exp(t)[None, :]
        fit = fit_natural_splines(t, y, solver)
        assert fit.second_derivatives[0, 0] == 0.0
        assert fit.second_derivatives[0, -1] == 0.0

    def test_single_curve_promoted(self, solver):
        t = np.linspace(0, 1, 10)
        fit = fit_natural_splines(t, np.sin(t), solver)
        assert isinstance(fit, NaturalSplineBatch)
        assert fit.num_curves == 1

    def test_validation(self, solver):
        t = np.linspace(0, 1, 10)
        with pytest.raises(ConfigurationError):
            fit_natural_splines(t[::-1], np.ones((1, 10)), solver)
        with pytest.raises(ShapeError):
            fit_natural_splines(t, np.ones((1, 9)), solver)
        with pytest.raises(ConfigurationError):
            fit_natural_splines(np.array([0.0, 1.0]), np.ones((1, 2)), solver)


class TestPoisson:
    def test_dst_roundtrip(self):
        rng = np.random.default_rng(2)
        arr = rng.standard_normal((7, 33))
        np.testing.assert_allclose(idst1(dst1(arr, 1), 1), arr, atol=1e-12)

    def test_manufactured_solution(self, solver):
        n = 127
        ps = PoissonSolver2D(n, solver=solver)
        x = np.linspace(ps.dx, 1 - ps.dx, n)
        X, Y = np.meshgrid(x, x)
        u_exact = np.sin(2 * np.pi * X) * np.sin(3 * np.pi * Y)
        f = -(4 + 9) * np.pi**2 * u_exact
        u = ps.solve(f)
        assert np.abs(u - u_exact).max() < 100 * ps.dx**2

    def test_discrete_residual_is_roundoff(self, solver):
        """The solver inverts the 5-point operator exactly."""
        n = 31
        ps = PoissonSolver2D(n, solver=solver)
        rng = np.random.default_rng(3)
        f = rng.standard_normal((n, n))
        u = ps.solve(f)
        assert ps.residual(u, f) < 1e-9

    def test_simulated_time_recorded(self, solver):
        ps = PoissonSolver2D(16, solver=solver)
        ps.solve(np.ones((16, 16)))
        assert ps.last_simulated_ms > 0

    def test_validation(self, solver):
        with pytest.raises(ConfigurationError):
            PoissonSolver2D(1, solver=solver)
        ps = PoissonSolver2D(8, solver=solver)
        with pytest.raises(ShapeError):
            ps.solve(np.ones((4, 4)))


class TestOcean:
    def _stepper(self, solver, columns=64, levels=40, dt=600.0):
        rng = np.random.default_rng(4)
        thickness = rng.uniform(2.0, 10.0, (columns, levels))
        depth = np.cumsum(thickness, axis=1)
        kappa = 1e-5 + 1e-2 * np.exp(-depth / 50.0)
        return VerticalMixingStepper(kappa, thickness, dt, solver=solver), depth

    def test_heat_conserved(self, solver):
        stepper, depth = self._stepper(solver)
        temp = 4.0 + 16.0 * np.exp(-depth / 100.0)
        heat0 = stepper.column_heat(temp)
        temp = stepper.run(temp, 10)
        heat = stepper.column_heat(temp)
        np.testing.assert_allclose(heat, heat0, rtol=1e-12)

    def test_maximum_principle(self, solver):
        stepper, depth = self._stepper(solver)
        rng = np.random.default_rng(5)
        temp = rng.uniform(0.0, 25.0, stepper.shape)
        lo, hi = temp.min(), temp.max()
        out = stepper.run(temp, 5)
        assert out.min() >= lo - 1e-9
        assert out.max() <= hi + 1e-9

    def test_relaxes_to_column_mean(self, solver):
        """With huge kappa everywhere, a column tends to its mean."""
        columns, levels = 4, 16
        thickness = np.ones((columns, levels))
        kappa = np.full((columns, levels), 1e3)
        stepper = VerticalMixingStepper(kappa, thickness, 100.0, solver=solver)
        rng = np.random.default_rng(6)
        temp = rng.random((columns, levels))
        mean = temp.mean(axis=1, keepdims=True)
        out = stepper.run(temp, 50)
        np.testing.assert_allclose(out, np.broadcast_to(mean, out.shape), atol=1e-6)

    def test_validation(self, solver):
        with pytest.raises(ShapeError):
            VerticalMixingStepper(np.ones(4), np.ones(4), 1.0, solver=solver)
        with pytest.raises(ConfigurationError):
            VerticalMixingStepper(
                -np.ones((2, 4)), np.ones((2, 4)), 1.0, solver=solver
            )
        with pytest.raises(ConfigurationError):
            VerticalMixingStepper(
                np.ones((2, 4)), np.ones((2, 4)), 0.0, solver=solver
            )
        stepper, _ = self._stepper(solver, columns=3, levels=5)
        with pytest.raises(ShapeError):
            stepper.step(np.ones((2, 5)))
