"""Tests for device specifications and the queryable projection."""

import dataclasses

import pytest

from repro.gpu import (
    GEFORCE_8800_GTX,
    GEFORCE_GTX_280,
    GEFORCE_GTX_470,
    PAPER_DEVICES,
    device_names,
    get_device_spec,
    query_device,
)
from repro.util.errors import ConfigurationError, DeviceError


class TestPaperDevices:
    def test_three_devices_shipped(self):
        assert set(device_names()) == {"8800gtx", "gtx280", "gtx470"}

    def test_table1_bandwidths(self):
        assert GEFORCE_8800_GTX.global_bandwidth_gb_s == 57.6
        assert GEFORCE_GTX_280.global_bandwidth_gb_s == 141.7
        assert GEFORCE_GTX_470.global_bandwidth_gb_s == 133.9

    def test_table1_shared_memory(self):
        assert GEFORCE_8800_GTX.shared_mem_per_processor == 16 * 1024
        assert GEFORCE_GTX_280.shared_mem_per_processor == 16 * 1024
        assert GEFORCE_GTX_470.shared_mem_per_processor == 48 * 1024

    def test_table1_processors(self):
        assert (GEFORCE_8800_GTX.num_processors, GEFORCE_8800_GTX.thread_processors) == (14, 8)
        assert (GEFORCE_GTX_280.num_processors, GEFORCE_GTX_280.thread_processors) == (30, 8)
        assert (GEFORCE_GTX_470.num_processors, GEFORCE_GTX_470.thread_processors) == (14, 32)

    @pytest.mark.parametrize("dsize", [4, 8])
    def test_paper_max_onchip_sizes(self, dsize):
        """§V: largest on-chip systems are 256 / 512 / 1024."""
        assert GEFORCE_8800_GTX.max_onchip_system_size(dsize) == 256
        assert GEFORCE_GTX_280.max_onchip_system_size(dsize) == 512
        assert GEFORCE_GTX_470.max_onchip_system_size(dsize) == 1024

    def test_max_onchip_rejects_odd_dtype(self):
        with pytest.raises(DeviceError):
            GEFORCE_8800_GTX.max_onchip_system_size(2)

    def test_lookup_by_alias(self):
        assert get_device_spec("GeForce GTX 470") is GEFORCE_GTX_470
        assert get_device_spec("470") is GEFORCE_GTX_470
        assert get_device_spec("8800") is GEFORCE_8800_GTX

    def test_unknown_device(self):
        with pytest.raises(DeviceError):
            get_device_spec("gtx9000")

    def test_with_overrides(self):
        modified = GEFORCE_GTX_470.with_overrides(num_processors=28)
        assert modified.num_processors == 28
        assert GEFORCE_GTX_470.num_processors == 14

    def test_invalid_spec_rejected(self):
        with pytest.raises(ConfigurationError):
            GEFORCE_GTX_470.with_overrides(num_processors=0)
        with pytest.raises(ConfigurationError):
            GEFORCE_GTX_470.with_overrides(global_bandwidth_gb_s=-1.0)

    def test_bytes_per_ms(self):
        assert GEFORCE_8800_GTX.bytes_per_ms == pytest.approx(57.6e6)

    def test_total_thread_processors(self):
        assert GEFORCE_GTX_470.total_thread_processors == 448


class TestQueryProjection:
    def test_queryable_fields_present(self):
        props = query_device(GEFORCE_GTX_280)
        assert props.num_processors == 30
        assert props.warp_size == 32
        assert props.shared_mem_per_processor == 16 * 1024

    def test_hidden_fields_absent(self):
        """The paper's premise: bandwidth, banks, and latency parameters
        cannot be queried."""
        props = query_device(GEFORCE_GTX_280)
        for hidden in (
            "global_bandwidth_gb_s",
            "shared_mem_banks",
            "threads_for_full_utilization",
            "blocks_to_saturate_bandwidth",
            "partition_camping_efficiency",
            "misaligned_access_penalty",
            "uncoalesced_penalty_cap",
            "coop_bandwidth_efficiency",
        ):
            assert not hasattr(props, hidden), hidden

    @pytest.mark.parametrize("dsize", [4, 8])
    def test_queryable_max_onchip_matches_spec(self, dsize):
        for spec in PAPER_DEVICES.values():
            props = query_device(spec)
            assert props.max_onchip_system_size(dsize) == spec.max_onchip_system_size(dsize)

    def test_projection_is_complete(self):
        """Every DeviceProperties field must come from the spec."""
        props = query_device(GEFORCE_8800_GTX)
        for f in dataclasses.fields(props):
            assert getattr(props, f.name) == getattr(GEFORCE_8800_GTX, f.name)
