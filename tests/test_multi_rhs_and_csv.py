"""Tests for multi-RHS factorised solves and CLI CSV output."""

import io

import numpy as np
import pytest

from repro.algorithms import factorize, thomas_solve
from repro.cli import main
from repro.systems import generators
from repro.util.errors import ShapeError


class TestSolveMany:
    def test_matches_per_rhs_solves(self):
        batch = generators.random_dominant(4, 128, rng=0)
        factors = factorize(batch)
        rng = np.random.default_rng(1)
        stack = rng.standard_normal((5, 4, 128))
        X = factors.solve_many(stack)
        assert X.shape == (5, 4, 128)
        for r in range(5):
            np.testing.assert_allclose(
                X[r], factors.solve(stack[r]), atol=1e-12
            )

    def test_residuals(self):
        batch = generators.random_dominant(3, 256, rng=2)
        factors = factorize(batch)
        stack = np.random.default_rng(3).standard_normal((4, 3, 256))
        X = factors.solve_many(stack)
        for r in range(4):
            assert batch.with_rhs(stack[r]).residual(X[r]).max() < 1e-12

    def test_zero_depth(self):
        batch = generators.random_dominant(2, 64, rng=4)
        factors = factorize(batch, split_depth=0)
        stack = np.stack([batch.d, 2 * batch.d])
        X = factors.solve_many(stack)
        np.testing.assert_allclose(X[0], thomas_solve(batch), atol=1e-12)
        np.testing.assert_allclose(X[1], 2 * X[0], atol=1e-11)

    def test_shape_validation(self):
        batch = generators.random_dominant(2, 64, rng=5)
        factors = factorize(batch)
        with pytest.raises(ShapeError):
            factors.solve_many(np.zeros((2, 64)))
        with pytest.raises(ShapeError):
            factors.solve_many(np.zeros((3, 2, 32)))


class TestFiguresCsv:
    def test_csv_files_written(self, tmp_path):
        out = io.StringIO()
        code = main(
            ["figures", "--out", str(tmp_path), "--csv"], out=out
        )
        assert code == 0
        for name in ("figure5", "figure6", "figure7", "figure8"):
            assert (tmp_path / f"{name}.csv").exists(), name
        header = (tmp_path / "figure8.csv").read_text().splitlines()[0]
        assert header == "workload,gpu_ms,cpu_ms,speedup"

    def test_csv_off_by_default(self, tmp_path):
        out = io.StringIO()
        main(["figures", "--out", str(tmp_path)], out=out)
        assert not (tmp_path / "figure5.csv").exists()
