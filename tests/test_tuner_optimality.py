"""Optimality audits of the self-tuner's hill climbs.

The decoupled hill climbs are only as good as the unimodality assumption
behind them (paper §IV-D: "a local minimum in a hyperbolic search
space"). These tests brute-force each axis on every device and assert
the hill climb actually lands on (or within noise of) the exhaustive
optimum — so any future cost-model change that breaks unimodality gets
caught instead of silently degrading the tuner.
"""

import pytest

from repro.core import SelfTuner, simulate_plan
from repro.core.pricing import price_base_kernel
from repro.core.tuning import exhaustive_min, pow2_range
from repro.gpu import make_device

DEVICES = ("8800gtx", "gtx280", "gtx470")
DSIZE = 4


@pytest.mark.parametrize("device", DEVICES)
@pytest.mark.parametrize("size_exp", [7, 8, 9])
def test_thomas_axis_hill_climb_is_global(device, size_exp):
    """Per (device, on-chip size): the T axis optimum found by climbing
    from the machine seed equals the exhaustive optimum."""
    dev = make_device(device)
    size = 1 << size_exp
    if size > dev.max_onchip_system_size(DSIZE):
        pytest.skip("size exceeds on-chip capacity")
    from repro.core.tuning import pow2_hill_climb

    def cost(t):
        return price_base_kernel(
            dev, 4096, size, DSIZE, thomas_switch=t, variant="coalesced", stride=1
        )

    climbed, climbed_ms = pow2_hill_climb(cost, seed=min(64, size), lo=4, hi=size)
    _, exhaustive_ms = exhaustive_min(cost, 4, size)
    assert climbed_ms <= exhaustive_ms * 1.0001


@pytest.mark.parametrize("device", DEVICES)
def test_stage3_axis_deployment_optimal(device):
    """The tuned stage-3 size must match the best deployment choice for
    its workload class (brute force over all feasible sizes)."""
    dev = make_device(device)
    m, n = 2048, 4096
    tuned = SelfTuner().switch_points(dev, m, n, DSIZE)

    def deployed(sp):
        _, report = simulate_plan(dev, m, n, DSIZE, sp)
        return report.total_ms

    tuned_ms = deployed(tuned)
    best_ms = min(
        deployed(tuned.with_(stage3_system_size=s))
        for s in pow2_range(32, dev.max_onchip_system_size(DSIZE))
    )
    assert tuned_ms <= best_ms * 1.02


@pytest.mark.parametrize("device", DEVICES)
def test_stage1_axis_deployment_optimal(device):
    """Same audit for the stage-1 target on the huge-system workload."""
    dev = make_device(device)
    tuned = SelfTuner().switch_points(dev, 1, 1 << 21, DSIZE)

    def deployed(target):
        _, report = simulate_plan(
            dev, 1, 1 << 21, DSIZE, tuned.with_(stage1_target_systems=target)
        )
        return report.total_ms

    tuned_ms = deployed(tuned.stage1_target_systems)
    best_ms = min(deployed(t) for t in pow2_range(1, 4096))
    assert tuned_ms <= best_ms * 1.02


@pytest.mark.parametrize("device", DEVICES)
def test_crossover_is_a_true_boundary(device):
    """Below the learned crossover the coalesced kernel wins; at and
    above it the strided kernel wins (for the tuned configuration)."""
    dev = make_device(device)
    tuned = SelfTuner().switch_points(dev, 0, 0, DSIZE)
    crossover = tuned.variant_crossover_stride
    if crossover is None:
        pytest.skip("no crossover found on this device")
    size, thomas = tuned.stage3_system_size, tuned.thomas_switch
    ref_m = max(64, 4 * dev.spec.num_processors) * 16

    def ms(variant, stride):
        return price_base_kernel(
            dev, ref_m, size, DSIZE,
            thomas_switch=thomas, variant=variant, stride=stride,
        )

    assert ms("strided", crossover) < ms("coalesced", crossover)
    below = crossover // 2
    if below >= 2:
        assert ms("coalesced", below) <= ms("strided", below)
