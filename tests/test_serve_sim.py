"""The serving-load simulation: determinism and the scaling story.

The simulator drives the *real* admission controller and autoscaler on
a simulated clock, so these tests pin (a) bit-for-bit determinism in
the seed, (b) the headline contrast — the fixed thread-pool tier
saturates into a reject storm while the autoscaled async tier holds
p99 — and (c) the accounting invariant that every request is either
served or shed, never lost.
"""

import pytest

from repro.serve import ServingSimConfig, compare_tiers, simulate_serving

pytestmark = pytest.mark.serve

# Small but past the thread-pool tier's saturation point.
CONFIG = ServingSimConfig(requests=4000, rate_per_s=12_000.0, seed=7)


@pytest.fixture(scope="module")
def tiers():
    return compare_tiers(CONFIG)


def test_every_request_is_served_or_shed(tiers):
    for report in tiers.values():
        assert report.served + report.shed_total == report.requests


def test_threadpool_tier_saturates_into_reject_storm(tiers):
    tp = tiers["threadpool"]
    assert tp.shed["queue_full"] > 0  # the reject storm
    assert tp.max_workers == CONFIG.workers  # nobody grew the fleet


def test_async_tier_holds_p99_where_threadpool_saturates(tiers):
    tp, ac = tiers["threadpool"], tiers["async"]
    assert ac.latency_p99_ms * 10 < tp.latency_p99_ms
    assert ac.shed_rate < 0.01
    assert ac.served == CONFIG.requests
    # It held p99 *by scaling*, not by luck.
    assert ac.max_workers > CONFIG.workers
    assert ac.autoscaler_actions["up"] > 0


def test_simulation_is_deterministic_in_the_seed():
    a = simulate_serving(CONFIG, "async")
    b = simulate_serving(CONFIG, "async")
    assert a.as_dict() == b.as_dict()
    c = simulate_serving(
        ServingSimConfig(requests=4000, rate_per_s=12_000.0, seed=8), "async"
    )
    assert c.as_dict() != a.as_dict()


def test_autoscale_off_keeps_the_fleet_fixed():
    config = ServingSimConfig(
        requests=2000, rate_per_s=12_000.0, seed=7, autoscale=False
    )
    report = simulate_serving(config, "async")
    assert report.max_workers == config.workers
    assert report.autoscaler_actions == {}


def test_rejects_unknown_tier():
    with pytest.raises(ValueError):
        simulate_serving(CONFIG, "gpu")
