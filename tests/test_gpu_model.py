"""Tests for occupancy, memory, shared-memory, and cost models."""

import pytest

from repro.gpu import (
    GEFORCE_8800_GTX,
    GEFORCE_GTX_470,
    ComputePhase,
    KernelCost,
    MemoryTraffic,
    bank_conflict_factor,
    bus_saturation,
    check_shared_allocation,
    compute_occupancy,
    kernel_time_ms,
    latency_efficiency,
    shared_access_cycles,
    strided_access_penalty,
)
from repro.gpu.memory import partition_camping_factor
from repro.util.errors import ConfigurationError, ResourceExhaustedError

SPEC = GEFORCE_GTX_470


class TestOccupancy:
    def test_single_block_fits(self):
        occ = compute_occupancy(SPEC, 256, 0, 16)
        assert occ.resident_blocks >= 1
        assert occ.resident_threads >= 256

    def test_threads_limit(self):
        occ = compute_occupancy(SPEC, 512, 0, 0)
        # 1536 max threads / 512 = 3 blocks; max_blocks 8 not binding.
        assert occ.resident_blocks == 3
        assert occ.limited_by == "threads"

    def test_smem_limit(self):
        occ = compute_occupancy(SPEC, 64, 16 * 1024, 0)
        assert occ.resident_blocks == 3
        assert occ.limited_by == "shared_memory"

    def test_register_limit(self):
        # 32 regs x 512 threads = half the 32K file -> two blocks, while
        # threads (3) and max_blocks (8) would allow more.
        occ = compute_occupancy(SPEC, 512, 0, 32)
        assert occ.resident_blocks == 2
        assert occ.limited_by == "registers"

    def test_register_file_exactly_consumed(self):
        # 32 regs x 1024 threads = the whole 32K file -> one block.
        occ = compute_occupancy(SPEC, 1024, 0, 32)
        assert occ.resident_blocks == 1

    def test_warp_padding(self):
        # 33 threads allocate 2 warps = 64 thread slots.
        occ = compute_occupancy(SPEC, 33, 0, 0)
        assert occ.resident_threads % 64 == 0

    def test_occupancy_fraction(self):
        occ = compute_occupancy(SPEC, 512, 0, 0)
        assert occ.occupancy == pytest.approx(1536 / 1536)

    def test_too_many_threads_raises(self):
        with pytest.raises(ResourceExhaustedError):
            compute_occupancy(SPEC, 2048, 0, 0)

    def test_too_much_smem_raises(self):
        with pytest.raises(ResourceExhaustedError):
            compute_occupancy(SPEC, 64, 64 * 1024, 0)

    def test_too_many_regs_raises(self):
        with pytest.raises(ResourceExhaustedError):
            compute_occupancy(SPEC, 1024, 0, 64)

    def test_zero_threads_raises(self):
        with pytest.raises(ResourceExhaustedError):
            compute_occupancy(SPEC, 0, 0, 0)

    def test_str_is_informative(self):
        occ = compute_occupancy(SPEC, 512, 0, 0)
        assert "blocks" in str(occ)


class TestLatencyEfficiency:
    def test_full_residency_is_full_efficiency(self):
        occ = compute_occupancy(SPEC, 512, 0, 0)  # 1536 threads, 3 blocks
        assert latency_efficiency(SPEC, occ) == 1.0

    def test_scales_with_active_threads(self):
        occ = compute_occupancy(SPEC, 512, 0, 0)
        full = latency_efficiency(SPEC, occ, active_threads_per_block=512)
        half = latency_efficiency(SPEC, occ, active_threads_per_block=16)
        assert half < full

    def test_single_block_penalty_fermi(self):
        """GTX 470 (min_blocks 2) penalises single-resident-block configs;
        the 8800 (min_blocks 1) does not — the Figure-5 mechanism."""
        occ470 = compute_occupancy(GEFORCE_GTX_470, 1024, 0, 32)
        assert occ470.resident_blocks == 1
        assert latency_efficiency(GEFORCE_GTX_470, occ470) < 1.0
        occ8800 = compute_occupancy(GEFORCE_8800_GTX, 256, 0, 32)
        assert occ8800.resident_blocks == 1
        assert latency_efficiency(GEFORCE_8800_GTX, occ8800) == 1.0

    def test_never_zero(self):
        occ = compute_occupancy(SPEC, 32, 0, 0)
        assert latency_efficiency(SPEC, occ, active_threads_per_block=1) > 0


class TestMemoryModel:
    def test_stride_one_no_penalty(self):
        assert strided_access_penalty(SPEC, 1) == 1.0

    def test_penalty_grows_then_caps(self):
        assert strided_access_penalty(SPEC, 2) == 2.0
        assert strided_access_penalty(SPEC, 1024) == SPEC.uncoalesced_penalty_cap

    def test_older_parts_pay_more(self):
        assert (
            strided_access_penalty(GEFORCE_8800_GTX, 1 << 20)
            > strided_access_penalty(GEFORCE_GTX_470, 1 << 20)
        )

    def test_bad_stride_rejected(self):
        with pytest.raises(ConfigurationError):
            strided_access_penalty(SPEC, 0)

    def test_saturation_monotone(self):
        sats = [bus_saturation(SPEC, b) for b in (1, 8, 56, 500)]
        assert sats == sorted(sats)
        assert sats[-1] == 1.0

    def test_partition_camping_threshold(self):
        assert partition_camping_factor(SPEC, 1) == 1.0
        assert partition_camping_factor(SPEC, 8) == 1.0
        assert (
            partition_camping_factor(SPEC, 16)
            == SPEC.partition_camping_efficiency
        )
        assert (
            partition_camping_factor(SPEC, 1 << 20)
            == SPEC.partition_camping_efficiency
        )

    def test_traffic_accumulates(self):
        t = MemoryTraffic()
        t.add(SPEC, 1000, stride=1)
        t.add(SPEC, 1000, stride=2)
        assert t.raw_bytes == 2000
        assert t.effective_bytes == 3000

    def test_misaligned_traffic(self):
        t = MemoryTraffic()
        t.add(SPEC, 1000, misaligned=True)
        assert t.effective_bytes == pytest.approx(
            1000 * SPEC.misaligned_access_penalty
        )

    def test_traffic_time_uses_saturation(self):
        t = MemoryTraffic()
        t.add(SPEC, 1_000_000, stride=1)
        slow = t.time_ms(SPEC, concurrent_blocks=1)
        fast = t.time_ms(SPEC, concurrent_blocks=1000)
        assert slow > fast
        assert fast == pytest.approx(1_000_000 / SPEC.bytes_per_ms)

    def test_traffic_merge(self):
        a = MemoryTraffic()
        a.add(SPEC, 100)
        b = MemoryTraffic()
        b.add(SPEC, 200)
        merged = a.merged(b)
        assert merged.raw_bytes == 300

    def test_negative_bytes_rejected(self):
        with pytest.raises(ConfigurationError):
            MemoryTraffic().add(SPEC, -1)

    def test_bad_efficiency_rejected(self):
        t = MemoryTraffic()
        t.add(SPEC, 100)
        with pytest.raises(ConfigurationError):
            t.time_ms(SPEC, 10, efficiency=0.0)


class TestSharedMemory:
    def test_conflict_free_stride(self):
        assert bank_conflict_factor(SPEC, 1) == 1.0

    def test_power_of_two_stride_conflicts(self):
        assert bank_conflict_factor(SPEC, SPEC.shared_mem_banks) == float(
            SPEC.shared_mem_banks
        )

    def test_odd_stride_conflict_free(self):
        assert bank_conflict_factor(SPEC, 3) == 1.0

    def test_allocation_check(self):
        assert check_shared_allocation(SPEC, 1024) == 1024
        with pytest.raises(ResourceExhaustedError):
            check_shared_allocation(SPEC, SPEC.shared_mem_per_processor + 1)

    def test_access_cycles_scale_with_conflicts(self):
        clean = shared_access_cycles(SPEC, 100, stride_words=1)
        dirty = shared_access_cycles(SPEC, 100, stride_words=32)
        assert dirty > clean


class TestKernelCost:
    def _cost(self, **kwargs):
        defaults = dict(
            name="k",
            grid_blocks=64,
            threads_per_block=256,
            smem_per_block=0,
            regs_per_thread=16,
            phases=[ComputePhase(10_000.0)],
        )
        defaults.update(kwargs)
        return KernelCost(**defaults)

    def test_roofline_total(self):
        t = MemoryTraffic()
        t.add(SPEC, 100e6)
        breakdown = kernel_time_ms(SPEC, self._cost(traffic=t))
        assert breakdown.total_ms == pytest.approx(
            breakdown.overhead_ms + max(breakdown.compute_ms, breakdown.memory_ms)
        )
        assert breakdown.bound == "memory"

    def test_compute_bound_detection(self):
        breakdown = kernel_time_ms(SPEC, self._cost(phases=[ComputePhase(1e8)]))
        assert breakdown.bound == "compute"

    def test_launch_overhead_scales(self):
        one = kernel_time_ms(SPEC, self._cost(launches=1))
        ten = kernel_time_ms(SPEC, self._cost(launches=10))
        assert ten.overhead_ms == pytest.approx(10 * one.overhead_ms)

    def test_more_work_more_time(self):
        small = kernel_time_ms(SPEC, self._cost(phases=[ComputePhase(1e4)]))
        large = kernel_time_ms(SPEC, self._cost(phases=[ComputePhase(1e6)]))
        assert large.compute_ms > small.compute_ms

    def test_partial_grid_uses_fewer_sms(self):
        small_grid = kernel_time_ms(SPEC, self._cost(grid_blocks=1))
        full_grid = kernel_time_ms(SPEC, self._cost(grid_blocks=64))
        assert small_grid.compute_ms > full_grid.compute_ms

    def test_invalid_cost_rejected(self):
        with pytest.raises(ConfigurationError):
            self._cost(grid_blocks=0)
        with pytest.raises(ConfigurationError):
            self._cost(launches=0)
        with pytest.raises(ConfigurationError):
            ComputePhase(-1.0)

    def test_oversized_kernel_raises_on_pricing(self):
        with pytest.raises(ResourceExhaustedError):
            kernel_time_ms(SPEC, self._cost(threads_per_block=4096))
