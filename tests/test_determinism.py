"""Determinism and reproducibility guarantees.

Everything in the library is deterministic given seeds: generators,
solvers, the machine model, and the tuner. These tests pin that — a
regression here would invalidate every cached tuning result and every
recorded experiment.
"""

import numpy as np

from repro.core import MultiStageSolver, SelfTuner, simulate_plan
from repro.dnc import MultiStageSorter
from repro.gpu import make_device
from repro.systems import build_workload, generators


class TestDeterminism:
    def test_generators_reproducible(self):
        for name in (
            "random_dominant",
            "random_uniform",
            "poisson_1d",
            "cubic_spline",
            "ocean_mixing",
            "ill_conditioned",
        ):
            g = getattr(generators, name)
            b1 = g(3, 32, rng=123)
            b2 = g(3, 32, rng=123)
            np.testing.assert_array_equal(b1.b, b2.b)
            np.testing.assert_array_equal(b1.d, b2.d)

    def test_workload_builder_reproducible(self):
        b1 = build_workload("1Kx1K", seed=7, scale=64)
        b2 = build_workload("1Kx1K", seed=7, scale=64)
        np.testing.assert_array_equal(b1.d, b2.d)

    def test_solver_bitwise_repeatable(self):
        batch = generators.random_dominant(8, 1024, rng=0)
        s1 = MultiStageSolver("gtx470", "default").solve(batch)
        s2 = MultiStageSolver("gtx470", "default").solve(batch)
        np.testing.assert_array_equal(s1.x, s2.x)
        assert s1.simulated_ms == s2.simulated_ms

    def test_pricing_repeatable(self):
        dev = make_device("gtx280")
        from repro.core import SwitchPoints

        sp = SwitchPoints()
        _, r1 = simulate_plan(dev, 64, 8192, 4, sp)
        _, r2 = simulate_plan(dev, 64, 8192, 4, sp)
        assert r1.total_ms == r2.total_ms

    def test_tuner_repeatable_across_instances(self):
        dev = make_device("gtx470")
        sp1 = SelfTuner().switch_points(dev, 0, 0, 4)
        sp2 = SelfTuner().switch_points(dev, 0, 0, 4)
        assert sp1 == sp2

    def test_sorter_repeatable(self):
        values = np.random.default_rng(5).standard_normal(10_000)
        r1 = MultiStageSorter("gtx470").sort(values)
        r2 = MultiStageSorter("gtx470").sort(values)
        np.testing.assert_array_equal(r1.values, r2.values)
        assert r1.simulated_ms == r2.simulated_ms

    def test_sorter_integer_dtype(self):
        values = np.random.default_rng(6).integers(-1000, 1000, 5000)
        result = MultiStageSorter(
            "gtx280", tile_size=128, coop_threshold=8
        ).sort(values.astype(np.float64))
        np.testing.assert_array_equal(result.values, np.sort(values))
