"""Tests for the divide-and-conquer merge-sort generalisation."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.dnc import MultiStageSorter, merge_sorted_runs
from repro.util.errors import ConfigurationError


class TestMergePrimitive:
    def test_merges_sorted_pairs(self):
        a = np.array([1.0, 3.0, 5.0, 7.0, 0.0, 2.0, 4.0, 6.0])
        out = merge_sorted_runs(a, 4)
        np.testing.assert_array_equal(out, np.arange(8.0))

    def test_stability_on_ties(self):
        # Left-run elements must precede equal right-run elements.
        a = np.array([1.0, 2.0, 1.0, 2.0])
        out = merge_sorted_runs(a, 2)
        np.testing.assert_array_equal(out, [1.0, 1.0, 2.0, 2.0])

    def test_rejects_misaligned_length(self):
        with pytest.raises(ConfigurationError):
            merge_sorted_runs(np.zeros(6), 4)


class TestSorter:
    @pytest.fixture(scope="class")
    def sorter(self):
        return MultiStageSorter("gtx470")

    def test_sorts_exactly(self, sorter):
        rng = np.random.default_rng(0)
        values = rng.standard_normal(100_000)
        result = sorter.sort(values)
        np.testing.assert_array_equal(result.values, np.sort(values))
        assert result.simulated_ms > 0

    def test_non_pow2_length(self, sorter):
        rng = np.random.default_rng(1)
        values = rng.random(12_345)
        result = sorter.sort(values)
        np.testing.assert_array_equal(result.values, np.sort(values))

    def test_empty_and_single(self, sorter):
        assert sorter.sort(np.array([])).values.size == 0
        np.testing.assert_array_equal(
            sorter.sort(np.array([3.0])).values, [3.0]
        )

    def test_rejects_2d(self, sorter):
        with pytest.raises(ConfigurationError):
            sorter.sort(np.zeros((2, 2)))

    def test_tile_fits_shared_memory(self, sorter):
        tile, _ = sorter.tuned_parameters(8)
        assert 2 * tile * 8 <= sorter.device.spec.shared_mem_per_processor

    def test_pass_structure(self, sorter):
        values = np.random.default_rng(2).random(1 << 16)
        result = sorter.sort(values)
        total_passes = result.independent_passes + result.cooperative_passes
        padded = 1 << 16
        assert total_passes == int(np.log2(padded // result.tile_size))
        # Early passes (many pairs) are independent; the endgame (few
        # pairs) flips cooperative — the stage-1↔2 analogy.
        if result.cooperative_passes:
            assert result.independent_passes > 0

    def test_pinned_parameters(self):
        sorter = MultiStageSorter("gtx280", tile_size=256, coop_threshold=8)
        result = sorter.sort(np.random.default_rng(3).random(4096))
        assert result.tile_size == 256
        assert result.coop_threshold == 8

    def test_pinned_must_be_pow2(self):
        with pytest.raises(ConfigurationError):
            MultiStageSorter("gtx470", tile_size=100)

    def test_tuned_beats_untuned_extremes(self):
        """The tuned tile must beat both pathological extremes on the
        model (tiny tiles = too many passes; the analogue of Figure 5)."""
        device = "gtx470"
        tuned = MultiStageSorter(device)
        n = 1 << 20
        values = np.random.default_rng(4).random(n)
        tuned_ms = tuned.sort(values).simulated_ms
        tiny = MultiStageSorter(device, tile_size=64, coop_threshold=1)
        assert tuned_ms < tiny.sort(values).simulated_ms

    def test_tuning_per_device_differs_or_matches_capacity(self):
        t470, _ = MultiStageSorter("gtx470").tuned_parameters(8)
        t8800, _ = MultiStageSorter("8800gtx").tuned_parameters(8)
        # The 470 has 3x the shared memory; its tile must be >= the 8800's.
        assert t470 >= t8800


@settings(max_examples=15, deadline=None)
@given(
    n=st.integers(min_value=1, max_value=5000),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
def test_sorter_matches_numpy(n, seed):
    values = np.random.default_rng(seed).standard_normal(n)
    result = MultiStageSorter("gtx280", tile_size=128, coop_threshold=16).sort(values)
    np.testing.assert_array_equal(result.values, np.sort(values))
