"""Double-precision (f64) reproduction checks.

The paper notes its hybrid has "better performance for double-precision
systems" than prior work; our model treats f64 as doubled traffic with
the same capacities (the register file, not storage, binds the on-chip
sizes). These tests pin that the structural results hold in f64 too.
"""

import pytest

from repro.algorithms import max_residual
from repro.core import (
    DefaultTuner,
    MachineQueryTuner,
    MultiStageSolver,
    SelfTuner,
    simulate_plan,
)
from repro.gpu import PAPER_DEVICES, make_device

DEVICES = ("8800gtx", "gtx280", "gtx470")


class TestDoublePrecision:
    def test_onchip_capacities_unchanged(self):
        """Register-bound capacities: 256/512/1024 in f64 as well (§V)."""
        expected = {"8800gtx": 256, "gtx280": 512, "gtx470": 1024}
        for name, spec in PAPER_DEVICES.items():
            assert spec.max_onchip_system_size(8) == expected[name]

    @pytest.mark.parametrize("device", DEVICES)
    def test_dynamic_not_worse_f64(self, device):
        dev = make_device(device)
        for m, n in ((1024, 1024), (1, 1 << 21)):
            dyn = SelfTuner().switch_points(dev, m, n, 8)
            _, dyn_rep = simulate_plan(dev, m, n, 8, dyn)
            for tuner in (DefaultTuner(), MachineQueryTuner()):
                sp = tuner.switch_points(dev, m, n, 8)
                _, rep = simulate_plan(dev, m, n, 8, sp)
                assert dyn_rep.total_ms <= rep.total_ms * 1.02, (m, n)

    @pytest.mark.parametrize("device", DEVICES)
    def test_f64_costs_more_than_f32(self, device):
        """Same workload, doubled element size: never cheaper."""
        dev = make_device(device)
        from repro.core import SwitchPoints

        sp = SwitchPoints()
        _, r32 = simulate_plan(dev, 512, 2048, 4, sp)
        _, r64 = simulate_plan(dev, 512, 2048, 8, sp)
        assert r64.total_ms > r32.total_ms

    def test_solver_numerics_f64(self):
        from repro.systems import generators

        batch = generators.random_dominant(32, 4096, rng=0)  # f64 default
        result = MultiStageSolver("gtx470", "dynamic").solve(batch)
        assert max_residual(batch, result.x) < 1e-13
