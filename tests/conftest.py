"""Shared fixtures and hypothesis strategies for the test suite."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import strategies as st

from repro.systems import generators
from repro.systems.tridiagonal import TridiagonalBatch


@pytest.fixture
def rng():
    """A deterministic generator; tests share the seed for reproducibility."""
    return np.random.default_rng(1234)


@pytest.fixture
def small_batch():
    """7 dominant systems of 32 equations — fast, exercises batching."""
    return generators.random_dominant(7, 32, rng=7)


@pytest.fixture
def pow2_batch():
    """16 dominant systems of 128 equations (power-of-two size)."""
    return generators.random_dominant(16, 128, rng=11)


@pytest.fixture
def odd_batch():
    """Systems whose size is not a power of two (forces padding paths)."""
    return generators.random_dominant(5, 100, rng=13)


# ---------------------------------------------------------------------------
# Hypothesis strategies
# ---------------------------------------------------------------------------

pow2_sizes = st.sampled_from([1, 2, 4, 8, 16, 32, 64, 128, 256])
small_counts = st.integers(min_value=1, max_value=6)


@st.composite
def dominant_batches(draw, min_size=1, max_size=256, pow2=True):
    """Strategy producing diagonally dominant batches."""
    if pow2:
        exp_max = max_size.bit_length() - 1
        exp_min = max(0, (min_size - 1).bit_length())
        n = 1 << draw(st.integers(min_value=exp_min, max_value=exp_max))
    else:
        n = draw(st.integers(min_value=min_size, max_value=max_size))
    m = draw(small_counts)
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    dominance = draw(st.floats(min_value=1.05, max_value=4.0))
    return generators.random_dominant(m, n, dominance=dominance, rng=seed)


def assert_close_to_oracle(batch: TridiagonalBatch, x, *, factor: float = 1.0):
    """Assert ``x`` matches the scipy banded oracle within a scaled tol."""
    from repro.algorithms import default_tolerance, scipy_banded_solve

    oracle = scipy_banded_solve(batch)
    tol = default_tolerance(batch) * factor
    scale = np.maximum(np.abs(oracle).max(axis=1, keepdims=True), 1.0)
    np.testing.assert_allclose(x / scale, oracle / scale, atol=tol, rtol=tol)
