"""Unit tests for the tridiagonal system containers."""

import numpy as np
import pytest

from repro.systems import TridiagonalBatch, TridiagonalSystem
from repro.util.errors import ShapeError


def _mk(m=3, n=8, dtype=np.float64):
    rng = np.random.default_rng(0)
    a = rng.standard_normal((m, n)).astype(dtype)
    b = (rng.standard_normal((m, n)) + 4.0).astype(dtype)
    c = rng.standard_normal((m, n)).astype(dtype)
    d = rng.standard_normal((m, n)).astype(dtype)
    return a, b, c, d


class TestConstruction:
    def test_shape_properties(self):
        batch = TridiagonalBatch(*_mk(5, 16))
        assert batch.num_systems == 5
        assert batch.system_size == 16
        assert batch.shape == (5, 16)
        assert batch.total_equations == 80
        assert len(batch) == 5

    def test_corners_zeroed(self):
        a, b, c, d = _mk()
        batch = TridiagonalBatch(a, b, c, d)
        assert (batch.a[:, 0] == 0).all()
        assert (batch.c[:, -1] == 0).all()

    def test_corner_zeroing_does_not_mutate_input(self):
        a, b, c, d = _mk()
        a0 = a.copy()
        TridiagonalBatch(a, b, c, d)
        np.testing.assert_array_equal(a, a0)

    def test_1d_inputs_promoted(self):
        a, b, c, d = (np.ones(6), np.full(6, 4.0), np.ones(6), np.ones(6))
        batch = TridiagonalBatch(a, b, c, d)
        assert batch.shape == (1, 6)

    def test_mismatched_shapes_rejected(self):
        a, b, c, d = _mk()
        with pytest.raises(ShapeError):
            TridiagonalBatch(a[:, :-1], b, c, d)

    def test_mismatched_dtypes_rejected(self):
        a, b, c, d = _mk()
        with pytest.raises(ShapeError):
            TridiagonalBatch(a.astype(np.float32), b, c, d)

    def test_integer_dtype_rejected(self):
        n = 4
        arr = np.ones((2, n), dtype=np.int64)
        with pytest.raises(ShapeError):
            TridiagonalBatch(arr, arr, arr, arr)

    def test_3d_rejected(self):
        arr = np.ones((2, 3, 4))
        with pytest.raises(ShapeError):
            TridiagonalBatch(arr, arr, arr, arr)

    def test_empty_system_rejected(self):
        arr = np.ones((2, 0))
        with pytest.raises(ShapeError):
            TridiagonalBatch(arr, arr, arr, arr)

    def test_nbytes(self):
        batch = TridiagonalBatch(*_mk(2, 8))
        assert batch.nbytes == 4 * 2 * 8 * 8

    def test_from_single(self):
        n = 10
        batch = TridiagonalBatch.from_single(
            np.zeros(n), np.ones(n), np.zeros(n), np.arange(n, dtype=float)
        )
        assert batch.shape == (1, n)


class TestStackAndCopy:
    def test_stack(self):
        b1 = TridiagonalBatch(*_mk(2, 8))
        b2 = TridiagonalBatch(*_mk(3, 8))
        stacked = TridiagonalBatch.stack([b1, b2])
        assert stacked.shape == (5, 8)
        np.testing.assert_array_equal(stacked.b[:2], b1.b)
        np.testing.assert_array_equal(stacked.b[2:], b2.b)

    def test_stack_size_mismatch(self):
        b1 = TridiagonalBatch(*_mk(2, 8))
        b2 = TridiagonalBatch(*_mk(2, 16))
        with pytest.raises(ShapeError):
            TridiagonalBatch.stack([b1, b2])

    def test_stack_empty(self):
        with pytest.raises(ShapeError):
            TridiagonalBatch.stack([])

    def test_copy_is_deep(self):
        batch = TridiagonalBatch(*_mk())
        dup = batch.copy()
        dup.b[0, 0] = 123.0
        assert batch.b[0, 0] != 123.0

    def test_astype(self):
        batch = TridiagonalBatch(*_mk())
        f32 = batch.astype(np.float32)
        assert f32.dtype == np.float32
        assert batch.dtype == np.float64

    def test_with_rhs(self):
        batch = TridiagonalBatch(*_mk(2, 8))
        new_d = np.zeros((2, 8))
        replaced = batch.with_rhs(new_d)
        np.testing.assert_array_equal(replaced.d, 0)
        np.testing.assert_array_equal(replaced.b, batch.b)

    def test_with_rhs_shape_mismatch(self):
        batch = TridiagonalBatch(*_mk(2, 8))
        with pytest.raises(ShapeError):
            batch.with_rhs(np.zeros((2, 9)))


class TestLinearAlgebra:
    def test_matvec_matches_dense(self):
        batch = TridiagonalBatch(*_mk(4, 12))
        x = np.random.default_rng(3).standard_normal((4, 12))
        dense = batch.to_dense()
        expected = np.einsum("mij,mj->mi", dense, x)
        np.testing.assert_allclose(batch.matvec(x), expected, atol=1e-12)

    def test_matvec_identity(self):
        n = 9
        batch = TridiagonalBatch.from_single(
            np.zeros(n), np.ones(n), np.zeros(n), np.zeros(n)
        )
        x = np.arange(n, dtype=float)[None, :]
        np.testing.assert_array_equal(batch.matvec(x), x)

    def test_matvec_shape_mismatch(self):
        batch = TridiagonalBatch(*_mk(2, 8))
        with pytest.raises(ShapeError):
            batch.matvec(np.zeros((3, 8)))

    def test_residual_zero_for_exact(self):
        n = 6
        batch = TridiagonalBatch.from_single(
            np.zeros(n), np.full(n, 2.0), np.zeros(n), np.arange(n, dtype=float)
        )
        x = batch.d / 2.0
        assert batch.residual(x).max() == 0.0

    def test_to_dense_size_one(self):
        batch = TridiagonalBatch(
            np.zeros((2, 1)), np.full((2, 1), 3.0), np.zeros((2, 1)), np.ones((2, 1))
        )
        dense = batch.to_dense()
        assert dense.shape == (2, 1, 1)
        assert (dense[:, 0, 0] == 3.0).all()


class TestSingleSystem:
    def test_roundtrip_through_batch(self):
        a, b, c, d = (arr[0] for arr in _mk(1, 8))
        sys1 = TridiagonalSystem(a, b, c, d)
        batch = sys1.as_batch()
        assert batch.shape == (1, 8)
        assert sys1.size == 8

    def test_system_view_from_batch(self):
        batch = TridiagonalBatch(*_mk(3, 8))
        sys1 = batch.system(1)
        np.testing.assert_array_equal(sys1.b, batch.b[1])

    def test_iteration(self):
        batch = TridiagonalBatch(*_mk(3, 8))
        assert sum(1 for _ in batch) == 3

    def test_residual_scalar(self):
        n = 5
        sys1 = TridiagonalSystem(
            np.zeros(n), np.ones(n), np.zeros(n), np.arange(n, dtype=float)
        )
        assert sys1.residual(np.arange(n, dtype=float)) == 0.0

    def test_2d_rejected(self):
        arr = np.ones((2, 3))
        with pytest.raises(ShapeError):
            TridiagonalSystem(arr, arr, arr, arr)
