"""Property-based tests (hypothesis) on the algorithm layer.

Invariants under test:

- every solver agrees with the LAPACK oracle on dominant systems;
- PCR splitting preserves the solution set at every depth;
- PCR preserves diagonal dominance (so later stages remain stable);
- padding round-trips exactly;
- LU factors reproduce Thomas results;
- solvers are stack-equivariant: stacking independent batches and
  solving once is bit-identical to solving each batch alone (the
  contract the batched solve service is built on).
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.algorithms import (
    cr_solve,
    lu_solve,
    pad_pow2,
    pcr_reduce,
    pcr_solve,
    pcr_split,
    pcr_thomas_solve,
    pcr_unsplit_solution,
    scipy_banded_solve,
    thomas_solve,
    unpad_solution,
)
from repro.systems import generators
from repro.systems.properties import dominance_margin, is_diagonally_dominant
from tests.conftest import assert_close_to_oracle, dominant_batches

COMMON = dict(max_examples=25, deadline=None)


@settings(**COMMON)
@given(batch=dominant_batches(max_size=128))
def test_thomas_matches_oracle(batch):
    assert_close_to_oracle(batch, thomas_solve(batch), factor=4)


@settings(**COMMON)
@given(batch=dominant_batches(max_size=128))
def test_cr_matches_oracle(batch):
    assert_close_to_oracle(batch, cr_solve(batch), factor=8)


@settings(**COMMON)
@given(batch=dominant_batches(max_size=128))
def test_pcr_matches_oracle(batch):
    assert_close_to_oracle(batch, pcr_solve(batch), factor=8)


@settings(**COMMON)
@given(
    batch=dominant_batches(min_size=2, max_size=128),
    switch_exp=st.integers(min_value=0, max_value=7),
)
def test_pcr_thomas_matches_oracle_all_switches(batch, switch_exp):
    x = pcr_thomas_solve(batch, 1 << switch_exp)
    assert_close_to_oracle(batch, x, factor=8)


@settings(**COMMON)
@given(
    batch=dominant_batches(min_size=4, max_size=64),
    depth=st.integers(min_value=0, max_value=4),
)
def test_pcr_split_preserves_solutions(batch, depth):
    depth = min(depth, int(np.log2(batch.system_size)))
    split = pcr_split(batch, depth)
    assert split.shape == (
        batch.num_systems << depth,
        batch.system_size >> depth,
    )
    x = pcr_unsplit_solution(thomas_solve(split), depth)
    assert_close_to_oracle(batch, x, factor=8)


@settings(**COMMON)
@given(
    batch=dominant_batches(min_size=4, max_size=64),
    steps=st.integers(min_value=1, max_value=3),
)
def test_pcr_preserves_dominance(batch, steps):
    """PCR on a strictly dominant system keeps every reduced system dominant.

    This is the stability contract that lets stage 4 run Thomas without
    pivoting on PCR-produced subsystems.
    """
    steps = min(steps, int(np.log2(batch.system_size)))
    reduced = pcr_reduce(batch, steps)
    assert is_diagonally_dominant(reduced)
    assert dominance_margin(reduced).min() >= -1e-9


@settings(**COMMON)
@given(batch=dominant_batches(min_size=3, max_size=150, pow2=False))
def test_padding_roundtrip(batch):
    padded, original = pad_pow2(batch)
    assert padded.system_size >= batch.system_size
    assert padded.system_size & (padded.system_size - 1) == 0
    x = unpad_solution(thomas_solve(padded), original)
    assert_close_to_oracle(batch, x, factor=8)


@settings(**COMMON)
@given(batch=dominant_batches(min_size=3, max_size=150, pow2=False))
def test_padded_equations_decoupled(batch):
    """Padding rows solve to exactly zero and leave real rows untouched."""
    padded, original = pad_pow2(batch)
    x = thomas_solve(padded)
    if padded.system_size > original:
        np.testing.assert_array_equal(x[:, original:], 0.0)
    np.testing.assert_allclose(
        x[:, :original], thomas_solve(batch), atol=1e-12, rtol=1e-12
    )


@settings(**COMMON)
@given(batch=dominant_batches(max_size=64, pow2=False))
def test_lu_equals_thomas(batch):
    np.testing.assert_allclose(
        lu_solve(batch), thomas_solve(batch), atol=1e-10, rtol=1e-10
    )


@settings(**COMMON)
@given(
    batch=dominant_batches(max_size=64),
    scale=st.floats(min_value=0.25, max_value=4.0),
)
def test_solver_linearity(batch, scale):
    """Solutions scale linearly with the RHS (solver is linear in d)."""
    x1 = thomas_solve(batch)
    x2 = thomas_solve(batch.with_rhs(batch.d * scale))
    np.testing.assert_allclose(x2, x1 * scale, atol=1e-9, rtol=1e-9)


@settings(**COMMON)
@given(batch=dominant_batches(max_size=64))
def test_oracle_self_consistency(batch):
    """The scipy oracle itself satisfies the residual contract."""
    x = scipy_banded_solve(batch)
    assert batch.residual(x).max() < 1e-12


# ---------------------------------------------------------------------------
# stack equivariance — the batched-service contract
# ---------------------------------------------------------------------------


@st.composite
def same_size_batch_lists(draw):
    """2-5 independent batches sharing one (power-of-two) system size."""
    from repro.systems.tridiagonal import TridiagonalBatch

    n = 1 << draw(st.integers(min_value=1, max_value=7))
    count = draw(st.integers(min_value=2, max_value=5))
    batches = []
    for _ in range(count):
        m = draw(st.integers(min_value=1, max_value=4))
        seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
        batches.append(generators.random_dominant(m, n, rng=seed))
    return batches


@settings(**COMMON)
@given(batches=same_size_batch_lists())
def test_thomas_stack_equivariance(batches):
    """Solving a stack == solving each member, bitwise."""
    from repro.systems.tridiagonal import TridiagonalBatch

    stacked_x = thomas_solve(TridiagonalBatch.stack(batches))
    offset = 0
    for batch in batches:
        rows = slice(offset, offset + batch.num_systems)
        np.testing.assert_array_equal(stacked_x[rows], thomas_solve(batch))
        offset += batch.num_systems


@settings(**COMMON)
@given(
    batches=same_size_batch_lists(),
    switch_exp=st.integers(min_value=0, max_value=6),
)
def test_pcr_thomas_stack_equivariance(batches, switch_exp):
    """The hybrid kernel never couples independent systems in a batch."""
    from repro.systems.tridiagonal import TridiagonalBatch

    switch = 1 << switch_exp
    stacked_x = pcr_thomas_solve(TridiagonalBatch.stack(batches), switch)
    offset = 0
    for batch in batches:
        rows = slice(offset, offset + batch.num_systems)
        np.testing.assert_array_equal(
            stacked_x[rows], pcr_thomas_solve(batch, switch)
        )
        offset += batch.num_systems


@settings(**COMMON)
@given(
    batches=same_size_batch_lists(),
    depth=st.integers(min_value=1, max_value=3),
)
def test_pcr_split_stack_equivariance(batches, depth):
    """Splitting a stack splits each member exactly as it would alone."""
    from repro.systems.tridiagonal import TridiagonalBatch

    depth = min(depth, int(np.log2(batches[0].system_size)))
    split_all = pcr_split(TridiagonalBatch.stack(batches), depth)
    offset = 0
    for batch in batches:
        rows = slice(offset, offset + (batch.num_systems << depth))
        alone = pcr_split(batch, depth)
        np.testing.assert_array_equal(split_all.b[rows], alone.b)
        np.testing.assert_array_equal(split_all.d[rows], alone.d)
        offset += batch.num_systems << depth
