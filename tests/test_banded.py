"""Tests for the banded-solver extension."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.algorithms import thomas_solve
from repro.banded import (
    BandedBatch,
    banded_lu_solve,
    finite_difference_biharmonic,
    random_banded_dominant,
    scipy_banded_oracle,
)
from repro.systems import generators
from repro.util.errors import ConfigurationError, ShapeError, SingularSystemError


class TestContainers:
    def test_shape_and_bandwidth(self):
        batch = random_banded_dominant(3, 20, 2, 1, rng=0)
        assert batch.num_systems == 3
        assert batch.system_size == 20
        assert batch.bandwidth == (2, 1)

    def test_corners_zeroed(self):
        batch = random_banded_dominant(2, 10, 1, 2, rng=1)
        assert (batch.bands[:, 0, :2] == 0).all()  # top super-diagonal
        assert (batch.bands[:, -1, -1] == 0).all()  # bottom sub-diagonal

    def test_matvec_matches_dense(self):
        batch = random_banded_dominant(2, 12, 2, 3, rng=2)
        x = np.random.default_rng(0).standard_normal((2, 12))
        expected = np.einsum("mij,mj->mi", batch.to_dense(), x)
        np.testing.assert_allclose(batch.matvec(x), expected, atol=1e-12)

    def test_diagonal_accessor(self):
        batch = finite_difference_biharmonic(1, 8)
        assert (batch.diagonal(0)[:, :] == 7.0).all()
        with pytest.raises(ShapeError):
            batch.diagonal(3)

    def test_tridiagonal_roundtrip(self):
        tri = generators.random_dominant(4, 16, rng=3)
        banded = BandedBatch.from_tridiagonal(tri)
        assert banded.bandwidth == (1, 1)
        back = banded.to_tridiagonal()
        np.testing.assert_allclose(back.a, tri.a)
        np.testing.assert_allclose(back.b, tri.b)
        np.testing.assert_allclose(back.c, tri.c)

    def test_to_tridiagonal_rejects_wide_bands(self):
        batch = random_banded_dominant(1, 8, 2, 2, rng=4)
        with pytest.raises(ShapeError):
            batch.to_tridiagonal()

    def test_validation(self):
        with pytest.raises(ShapeError):
            BandedBatch(np.ones((2, 3, 8)), np.ones((2, 8)), kl=2, ku=2)
        with pytest.raises(ShapeError):
            BandedBatch(np.ones((2, 3, 8)), np.ones((2, 7)), kl=1, ku=1)
        with pytest.raises(ShapeError):
            BandedBatch(np.ones((2, 17, 8)), np.ones((2, 8)), kl=8, ku=8)


class TestBandedLU:
    @pytest.mark.parametrize("kl,ku", [(0, 0), (1, 1), (2, 1), (1, 3), (4, 4)])
    def test_matches_oracle(self, kl, ku):
        batch = random_banded_dominant(4, 30, kl, ku, rng=kl * 10 + ku)
        x = banded_lu_solve(batch)
        np.testing.assert_allclose(x, scipy_banded_oracle(batch), atol=1e-10)
        assert batch.residual(x).max() < 1e-12

    def test_biharmonic(self):
        batch = finite_difference_biharmonic(3, 40, rng=5)
        x = banded_lu_solve(batch)
        assert batch.residual(x).max() < 1e-11

    def test_tridiagonal_case_matches_thomas(self):
        tri = generators.random_dominant(3, 25, rng=6)
        banded = BandedBatch.from_tridiagonal(tri)
        np.testing.assert_allclose(
            banded_lu_solve(banded), thomas_solve(tri), atol=1e-11
        )

    def test_diagonal_case(self):
        bands = np.full((2, 1, 6), 2.0)
        d = np.arange(12, dtype=float).reshape(2, 6)
        batch = BandedBatch(bands, d, kl=0, ku=0)
        np.testing.assert_allclose(banded_lu_solve(batch), d / 2.0)

    def test_singular_detected(self):
        bands = np.zeros((1, 3, 6))
        batch = BandedBatch(bands, np.ones((1, 6)), kl=1, ku=1)
        with pytest.raises(SingularSystemError):
            banded_lu_solve(batch)

    def test_input_not_mutated(self):
        batch = random_banded_dominant(2, 15, 2, 2, rng=7)
        before = batch.bands.copy()
        banded_lu_solve(batch)
        np.testing.assert_array_equal(batch.bands, before)


class TestGenerators:
    def test_dominance(self):
        batch = random_banded_dominant(3, 20, 3, 2, rng=8)
        dense = batch.to_dense()
        diag = np.abs(np.diagonal(dense, axis1=1, axis2=2))
        off = np.abs(dense).sum(axis=2) - diag
        assert (diag > off).all()

    def test_bad_bandwidths_rejected(self):
        with pytest.raises(ConfigurationError):
            random_banded_dominant(1, 8, 8, 0)
        with pytest.raises(ConfigurationError):
            random_banded_dominant(1, 8, -1, 0)

    def test_biharmonic_needs_five(self):
        with pytest.raises(ConfigurationError):
            finite_difference_biharmonic(1, 4)


@settings(max_examples=20, deadline=None)
@given(
    n=st.integers(min_value=5, max_value=40),
    kl=st.integers(min_value=0, max_value=4),
    ku=st.integers(min_value=0, max_value=4),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
def test_banded_lu_property(n, kl, ku, seed):
    """Banded LU matches the pivoted LAPACK oracle on dominant systems."""
    batch = random_banded_dominant(3, n, min(kl, n - 1), min(ku, n - 1), rng=seed)
    x = banded_lu_solve(batch)
    ref = scipy_banded_oracle(batch)
    scale = np.abs(ref).max() + 1.0
    assert np.abs(x - ref).max() / scale < 1e-9
