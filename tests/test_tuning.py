"""Tests for the three tuning strategies, the search, and the cache."""

import pytest

from repro.core import (
    DEFAULT_SWITCH_POINTS,
    DefaultTuner,
    MachineQueryTuner,
    SelfTuner,
    SwitchPoints,
    TuningCache,
    make_tuner,
)
from repro.core.tuning import exhaustive_min, pow2_hill_climb, pow2_range
from repro.gpu import make_device
from repro.util.errors import ConfigurationError, TuningError


class TestSearchPrimitives:
    def test_pow2_range(self):
        assert pow2_range(4, 64) == (4, 8, 16, 32, 64)
        assert pow2_range(3, 9) == (4, 8)

    def test_pow2_range_invalid(self):
        with pytest.raises(TuningError):
            pow2_range(0, 8)
        with pytest.raises(TuningError):
            pow2_range(9, 15)

    def test_hill_climb_finds_unimodal_minimum(self):
        f = lambda x: abs(x - 64) + 0.1 * x
        best, cost = pow2_hill_climb(f, seed=8, lo=1, hi=1024)
        exhaust, _ = exhaustive_min(f, 1, 1024)
        assert best == exhaust

    def test_hill_climb_seeded_at_optimum_is_cheap(self):
        evals = []

        def f(x):
            evals.append(x)
            return abs(x - 64)

        best, _ = pow2_hill_climb(f, seed=64, lo=1, hi=1024)
        assert best == 64
        assert len(evals) == 3  # seed + both neighbours

    def test_hill_climb_clamps_seed(self):
        best, _ = pow2_hill_climb(lambda x: x, seed=1024, lo=1, hi=64)
        assert best == 1

    def test_hill_climb_rejects_non_pow2_seed(self):
        with pytest.raises(TuningError):
            pow2_hill_climb(lambda x: x, seed=24, lo=1, hi=64)

    def test_memo_shared(self):
        calls = []
        memo = {}

        def f(x):
            calls.append(x)
            return x

        pow2_hill_climb(f, seed=4, lo=1, hi=64, memo=memo)
        pow2_hill_climb(f, seed=4, lo=1, hi=64, memo=memo)
        assert len(calls) == len(set(calls))


class TestDefaultTuner:
    def test_constants(self):
        sp = DefaultTuner().switch_points(make_device("gtx470"), 0, 0, 4)
        assert sp == DEFAULT_SWITCH_POINTS
        assert sp.stage3_system_size == 256  # weakest-card ceiling
        assert sp.thomas_switch == 64
        assert sp.stage1_target_systems == 16
        assert sp.source == "default"

    def test_device_oblivious(self):
        a = DefaultTuner().switch_points(make_device("8800gtx"), 1, 2, 4)
        b = DefaultTuner().switch_points(make_device("gtx470"), 9, 9, 8)
        assert a == b


class TestMachineQueryTuner:
    def test_stage3_tracks_onchip_capacity(self):
        t = MachineQueryTuner()
        assert t.switch_points(make_device("8800gtx"), 0, 0, 4).stage3_system_size == 256
        assert t.switch_points(make_device("gtx280"), 0, 0, 4).stage3_system_size == 512
        assert t.switch_points(make_device("gtx470"), 0, 0, 4).stage3_system_size == 1024

    def test_thomas_is_two_warps_everywhere(self):
        """§IV-C: without bank information, guess from the warp size."""
        for name in ("8800gtx", "gtx280", "gtx470"):
            sp = MachineQueryTuner().switch_points(make_device(name), 0, 0, 4)
            assert sp.thomas_switch == 64

    def test_stage1_target_from_processors(self):
        sp = MachineQueryTuner().switch_points(make_device("gtx280"), 0, 0, 4)
        assert sp.stage1_target_systems == 60

    def test_no_crossover_knowledge(self):
        sp = MachineQueryTuner().switch_points(make_device("gtx470"), 0, 0, 4)
        assert sp.variant_crossover_stride is None
        assert sp.base_variant == "coalesced"


class TestSelfTuner:
    def test_tuned_values_in_valid_ranges(self):
        for name in ("8800gtx", "gtx280", "gtx470"):
            dev = make_device(name)
            sp = SelfTuner().switch_points(dev, 0, 0, 4)
            assert sp.source == "dynamic"
            assert 32 <= sp.stage3_system_size <= dev.max_onchip_system_size(4)
            assert 4 <= sp.thomas_switch <= sp.stage3_system_size
            assert sp.stage1_target_systems >= 1

    def test_fig6_thomas_optima(self):
        """§V: on near-contiguous workloads the 8800's tuned switch is 64
        (the Figure-6 optimum); deeper-strided deployments may tune lower
        because out-of-window fetches are ruinous on G80."""
        sp8800 = SelfTuner().switch_points(
            make_device("8800gtx"), 1024, 512, 4
        )
        assert sp8800.thomas_switch == 64

    def test_fig5_gtx470_prefers_512(self):
        """§V: the 470 splits one step beyond its 1024 on-chip capacity."""
        sp = SelfTuner().switch_points(make_device("gtx470"), 2048, 1024, 4)
        assert sp.stage3_system_size == 512

    def test_crossover_learned(self):
        sp = SelfTuner().switch_points(make_device("gtx470"), 0, 0, 4)
        assert sp.variant_crossover_stride is not None

    def test_cache_hit_skips_tuning(self):
        tuner = SelfTuner()
        dev = make_device("gtx470")
        first = tuner.switch_points(dev, 0, 0, 4)
        trace = tuner.last_trace
        second = tuner.switch_points(dev, 0, 0, 4)
        assert first == second
        assert tuner.last_trace is trace  # no re-tune

    def test_per_workload_classes_tuned_separately(self):
        tuner = SelfTuner()
        dev = make_device("gtx470")
        generic = tuner.switch_points(dev, 0, 0, 4)
        huge = tuner.switch_points(dev, 1, 1 << 21, 4)
        assert len(tuner.cache) == 2
        assert generic.source == huge.source == "dynamic"

    def test_trace_records_axes(self):
        tuner = SelfTuner()
        tuner.switch_points(make_device("gtx280"), 0, 0, 4)
        trace = tuner.last_trace
        assert trace.num_evaluations > 0
        for axis in ("stage3_size", "thomas_switch", "stage1_target", "variant_crossover"):
            assert trace.evaluations_for(axis) > 0, axis

    def test_decoupled_search_is_small(self):
        """The pruning claim: decoupled axes keep the search to dozens of
        probes, not the hundreds a joint grid would take."""
        tuner = SelfTuner()
        tuner.switch_points(make_device("gtx470"), 0, 0, 4)
        assert tuner.last_trace.num_evaluations < 150


class TestTuningCache:
    def test_memory_roundtrip(self):
        cache = TuningCache()
        sp = SwitchPoints(thomas_switch=128, source="dynamic")
        cache.put("dev", 4, sp, "n=1024")
        assert cache.get("dev", 4, "n=1024") == sp
        assert cache.get("dev", 8, "n=1024") is None
        assert cache.get("dev", 4, "n=2048") is None

    def test_disk_roundtrip(self, tmp_path):
        path = tmp_path / "tuning.json"
        cache = TuningCache(path)
        sp = SwitchPoints(stage3_system_size=512, variant_crossover_stride=16)
        cache.put("GeForce GTX 470", 4, sp)
        reloaded = TuningCache(path)
        assert reloaded.get("GeForce GTX 470", 4) == sp

    def test_clear(self, tmp_path):
        cache = TuningCache(tmp_path / "t.json")
        cache.put("d", 4, SwitchPoints())
        cache.clear()
        assert len(cache) == 0
        assert TuningCache(tmp_path / "t.json").get("d", 4) is None

    def test_stale_schema_entry_is_a_miss_not_a_crash(self, tmp_path):
        """An entry persisted by an older SwitchPoints schema (field
        since removed) must read as a miss, so it gets re-tuned and
        overwritten instead of raising an untyped TypeError."""
        path = tmp_path / "stale.json"
        path.write_text(
            '{"version": 1, "entries": {"dev|dsize=4|generic": '
            '{"thomas_switch": 64, "batch_fuse_systems": null}}}'
        )
        cache = TuningCache(path)
        assert cache.get("dev", 4) is None
        calls = []

        def tune():
            calls.append(1)
            return SwitchPoints(thomas_switch=128)

        assert cache.get_or_tune("dev", 4, tune).thomas_switch == 128
        assert calls  # it really re-tuned
        assert cache.get("dev", 4).thomas_switch == 128  # and overwrote

    def test_bad_version_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"version": 99, "entries": {}}')
        with pytest.raises(TuningError):
            TuningCache(path)

    def test_self_tuner_persists(self, tmp_path):
        path = tmp_path / "tuned.json"
        dev = make_device("gtx280")
        sp1 = SelfTuner(cache=str(path)).switch_points(dev, 0, 0, 4)
        fresh = SelfTuner(cache=str(path))
        sp2 = fresh.switch_points(dev, 0, 0, 4)
        assert sp1 == sp2
        assert fresh.last_trace is None  # served from disk, no search


class TestMakeTuner:
    def test_names(self):
        assert make_tuner("default").name == "default"
        assert make_tuner("static").name == "static"
        assert make_tuner("dynamic").name == "dynamic"
        assert make_tuner("machine-query").name == "static"

    def test_unknown(self):
        with pytest.raises(ConfigurationError):
            make_tuner("oracle")
