"""Tests for the simulated-GPU kernels: numerics and cost accounting."""

import numpy as np
import pytest

from repro.algorithms import (
    max_residual,
    pcr_thomas_solve,
    pcr_unsplit_solution,
    thomas_solve,
)
from repro.gpu import make_device
from repro.kernels import (
    CoopPcrKernel,
    DivideKernel,
    GlobalPcrKernel,
    KernelContext,
    PcrThomasSmemKernel,
    ThomasGlobalKernel,
    TransposeKernel,
    warp_padded_threads,
    warps_for,
)
from repro.systems import generators
from repro.util.errors import ConfigurationError, ResourceExhaustedError


def _ctx(device="gtx470"):
    return KernelContext(make_device(device).session())


class TestHelpers:
    def test_warps_for(self):
        assert warps_for(1) == 1
        assert warps_for(32) == 1
        assert warps_for(33) == 2

    def test_warp_padded(self):
        assert warp_padded_threads(33) == 64

    def test_warps_rejects_zero(self):
        with pytest.raises(ConfigurationError):
            warps_for(0)


class TestPcrThomasSmemKernel:
    def test_numerics_match_reference(self):
        ctx = _ctx()
        batch = generators.random_dominant(8, 512, rng=0)
        x = PcrThomasSmemKernel(thomas_switch=128).run(ctx, batch)
        np.testing.assert_allclose(x, pcr_thomas_solve(batch, 128), atol=1e-12)

    def test_records_one_launch(self):
        ctx = _ctx()
        batch = generators.random_dominant(4, 256, rng=1)
        PcrThomasSmemKernel().run(ctx, batch)
        report = ctx.session.report()
        assert report.num_launches == 1
        assert report.total_ms > 0

    def test_rejects_oversized_system(self):
        ctx = _ctx("8800gtx")  # max on-chip 256
        batch = generators.random_dominant(2, 512, rng=0)
        with pytest.raises(ResourceExhaustedError):
            PcrThomasSmemKernel().run(ctx, batch)

    def test_rejects_unknown_variant(self):
        with pytest.raises(ConfigurationError):
            PcrThomasSmemKernel(variant="magic")

    def test_variants_equal_at_stride_one(self):
        ctx = _ctx()
        cost_c = PcrThomasSmemKernel(variant="coalesced").cost(ctx, 64, 512, 4, 1)
        cost_s = PcrThomasSmemKernel(variant="strided").cost(ctx, 64, 512, 4, 1)
        assert cost_c.traffic.effective_bytes == cost_s.traffic.effective_bytes

    def test_strided_pays_transaction_penalty(self):
        ctx = _ctx()
        base = PcrThomasSmemKernel(variant="strided").cost(ctx, 64, 512, 4, 1)
        far = PcrThomasSmemKernel(variant="strided").cost(ctx, 64, 512, 4, 64)
        assert far.traffic.effective_bytes > base.traffic.effective_bytes

    def test_coalesced_spill_grows_with_stride(self):
        ctx = _ctx()
        near = PcrThomasSmemKernel(variant="coalesced").cost(ctx, 64, 512, 4, 2)
        far = PcrThomasSmemKernel(variant="coalesced").cost(ctx, 64, 512, 4, 512)
        assert far.traffic.effective_bytes > near.traffic.effective_bytes

    def test_crossover_exists(self):
        """At large strides the strided variant must win (paper §III-A)."""
        ctx = _ctx()
        stride = 4096
        c = PcrThomasSmemKernel(variant="coalesced").cost(ctx, 64, 512, 4, stride)
        s = PcrThomasSmemKernel(variant="strided").cost(ctx, 64, 512, 4, stride)
        assert s.traffic.effective_bytes < c.traffic.effective_bytes

    def test_thomas_switch_clamped(self):
        ctx = _ctx()
        batch = generators.random_dominant(4, 64, rng=2)
        x = PcrThomasSmemKernel(thomas_switch=1024).run(ctx, batch)
        assert max_residual(batch, x) < 1e-12

    def test_two_phases_recorded(self):
        ctx = _ctx()
        cost = PcrThomasSmemKernel(thomas_switch=64).cost(ctx, 16, 512, 4, 1)
        assert len(cost.phases) == 2
        pcr_phase, thomas_phase = cost.phases
        assert thomas_phase.active_threads_per_block == 64


class TestGlobalPcrKernel:
    def test_split_numerics(self):
        ctx = _ctx()
        batch = generators.random_dominant(16, 1024, rng=3)
        split = GlobalPcrKernel().run(ctx, batch, 256)
        assert split.shape == (64, 256)
        x = pcr_unsplit_solution(thomas_solve(split), 2)
        assert max_residual(batch, x) < 1e-12

    def test_noop_when_small_enough(self):
        ctx = _ctx()
        batch = generators.random_dominant(4, 128, rng=4)
        out = GlobalPcrKernel().run(ctx, batch, 256)
        assert out is batch
        assert ctx.session.report().num_launches == 0

    def test_single_launch_for_all_steps(self):
        ctx = _ctx()
        batch = generators.random_dominant(64, 4096, rng=5)
        GlobalPcrKernel().run(ctx, batch, 256)
        assert ctx.session.report().num_launches == 1

    def test_traffic_proportional_to_steps(self):
        ctx = _ctx()
        one = GlobalPcrKernel().cost(ctx, 64, 1024, 4, 1)
        three = GlobalPcrKernel().cost(ctx, 64, 1024, 4, 3)
        assert three.traffic.raw_bytes == pytest.approx(3 * one.traffic.raw_bytes)

    def test_camping_lowers_efficiency_at_large_strides(self):
        ctx = _ctx()
        near = GlobalPcrKernel().cost(ctx, 64, 1024, 4, 2, start_stride=1)
        far = GlobalPcrKernel().cost(ctx, 64, 1024, 4, 2, start_stride=1024)
        assert far.bandwidth_efficiency < near.bandwidth_efficiency

    def test_rejects_zero_steps(self):
        ctx = _ctx()
        with pytest.raises(ConfigurationError):
            GlobalPcrKernel().cost(ctx, 4, 64, 4, 0)


class TestCoopPcrKernel:
    def test_split_numerics(self):
        ctx = _ctx()
        batch = generators.random_dominant(1, 4096, rng=6)
        split = CoopPcrKernel().run(ctx, batch, 4)
        assert split.shape == (16, 256)
        x = pcr_unsplit_solution(thomas_solve(split), 4)
        assert max_residual(batch, x) < 1e-12

    def test_one_launch_per_step(self):
        """The inter-step dependency forces a grid sync per split."""
        ctx = _ctx()
        batch = generators.random_dominant(1, 1024, rng=7)
        CoopPcrKernel().run(ctx, batch, 5)
        assert ctx.session.report().num_launches == 5

    def test_zero_splits_is_noop(self):
        ctx = _ctx()
        batch = generators.random_dominant(1, 64, rng=8)
        out = CoopPcrKernel().run(ctx, batch, 0)
        assert out is batch

    def test_too_many_splits_rejected(self):
        ctx = _ctx()
        batch = generators.random_dominant(1, 64, rng=9)
        with pytest.raises(ConfigurationError):
            CoopPcrKernel().run(ctx, batch, 7)

    def test_sync_overhead_charged(self):
        ctx = _ctx()
        cost = CoopPcrKernel().cost_per_step(ctx, 1 << 20, 4)
        assert cost.extra_sync_us == ctx.spec.coop_sync_overhead_us

    def test_coop_less_efficient_than_stage2(self):
        """Stage 1's per-byte cost exceeds stage 2's (paper §III-C)."""
        ctx = _ctx()
        coop = CoopPcrKernel().cost_per_step(ctx, 1 << 20, 4)
        stage2 = GlobalPcrKernel().cost(ctx, 64, (1 << 20) // 64, 4, 1)
        assert coop.bandwidth_efficiency < stage2.bandwidth_efficiency


class TestThomasGlobalKernel:
    def test_numerics(self):
        ctx = _ctx()
        batch = generators.random_dominant(128, 64, rng=10)
        x = ThomasGlobalKernel().run(ctx, batch)
        np.testing.assert_allclose(x, thomas_solve(batch), atol=1e-13)

    def test_row_layout_pays_stride_penalty(self):
        ctx = _ctx()
        row = ThomasGlobalKernel(layout="row").cost(ctx, 1024, 64, 4)
        inter = ThomasGlobalKernel(layout="interleaved").cost(ctx, 1024, 64, 4)
        assert row.traffic.effective_bytes > inter.traffic.effective_bytes

    def test_rejects_unknown_layout(self):
        with pytest.raises(ConfigurationError):
            ThomasGlobalKernel(layout="diagonal")


class TestElementwiseKernels:
    def test_divide(self):
        ctx = _ctx()
        batch = generators.identity(4, 32)
        x = DivideKernel().run(ctx, batch)
        np.testing.assert_array_equal(x, batch.d)
        assert ctx.session.report().num_launches == 1

    def test_transpose(self):
        ctx = _ctx()
        arr = np.arange(12.0, dtype=np.float32).reshape(3, 4)
        out = TransposeKernel().run(ctx, arr)
        np.testing.assert_array_equal(out, arr.T)
