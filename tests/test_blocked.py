"""Tests for the block-tridiagonal extension."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.blocked import (
    BlockMultiStageSolver,
    BlockTridiagonalBatch,
    block_dense_solve,
    block_pcr_reduce,
    block_pcr_solve,
    block_pcr_split,
    block_pcr_thomas_solve,
    block_pcr_unsplit_solution,
    block_thomas_solve,
    coupled_channels,
    poisson_2d_lines,
    random_block_dominant,
)
from repro.util.errors import (
    ConfigurationError,
    PlanError,
    ShapeError,
    SingularSystemError,
)


def _oracle_check(batch, X, tol=1e-9):
    ref = block_dense_solve(batch)
    scale = np.abs(ref).max() + 1.0
    assert np.abs(X - ref).max() / scale < tol


class TestContainers:
    def test_shape_properties(self):
        batch = random_block_dominant(3, 8, 4, rng=0)
        assert batch.shape == (3, 8, 4)
        assert batch.total_unknowns == 3 * 8 * 4
        assert batch.nbytes == (3 * 3 * 8 * 16 + 3 * 8 * 4) * 8

    def test_corner_blocks_zeroed(self):
        rng = np.random.default_rng(0)
        blocks = rng.random((2, 4, 3, 3))
        batch = BlockTridiagonalBatch(
            blocks, blocks + 10 * np.eye(3), blocks.copy(), rng.random((2, 4, 3))
        )
        assert (batch.A[:, 0] == 0).all()
        assert (batch.C[:, -1] == 0).all()

    def test_matvec_matches_dense(self):
        batch = random_block_dominant(2, 6, 3, rng=1)
        X = np.random.default_rng(2).standard_normal((2, 6, 3))
        dense = batch.to_dense()
        expected = np.einsum(
            "mij,mj->mi", dense, X.reshape(2, -1)
        ).reshape(2, 6, 3)
        np.testing.assert_allclose(batch.matvec(X), expected, atol=1e-12)

    def test_validation(self):
        with pytest.raises(ShapeError):
            BlockTridiagonalBatch(
                np.ones((2, 4, 3, 2)),  # non-square blocks
                np.ones((2, 4, 3, 2)),
                np.ones((2, 4, 3, 2)),
                np.ones((2, 4, 3)),
            )
        with pytest.raises(ShapeError):
            BlockTridiagonalBatch(
                np.ones((2, 4, 3, 3)),
                np.ones((2, 4, 3, 3)),
                np.ones((2, 4, 3, 3)),
                np.ones((2, 4, 2)),  # wrong rhs width
            )

    def test_residual_zero_for_exact(self):
        batch = random_block_dominant(2, 4, 2, rng=3)
        X = block_dense_solve(batch)
        assert batch.residual(X).max() < 1e-12


class TestGenerators:
    def test_poisson_2d_lines_structure(self):
        batch = poisson_2d_lines(2, 8, 5, rng=0)
        assert batch.shape == (2, 8, 5)
        np.testing.assert_array_equal(
            batch.A[:, 1], np.broadcast_to(-np.eye(5), (2, 5, 5))
        )
        assert batch.B[0, 0, 0, 0] == 4.0

    def test_coupled_channels_symmetric_coupling(self):
        batch = coupled_channels(2, 8, 4, coupling=0.3, rng=1)
        np.testing.assert_allclose(
            batch.B[0, 0], batch.B[0, 0].T, atol=1e-12
        )

    def test_coupled_channels_rejects_bad_coupling(self):
        with pytest.raises(ConfigurationError):
            coupled_channels(1, 4, 2, coupling=1.5)

    def test_random_dominant_rejects_bad_dominance(self):
        with pytest.raises(ConfigurationError):
            random_block_dominant(1, 4, 2, dominance=0.5)


class TestBlockAlgorithms:
    @pytest.mark.parametrize("k", [1, 2, 5])
    def test_block_thomas_matches_dense(self, k):
        batch = random_block_dominant(3, 12, k, rng=k)
        _oracle_check(batch, block_thomas_solve(batch))

    def test_block_thomas_scalar_case_matches_scalar_thomas(self):
        """k=1 blocks must reduce to the scalar algorithm."""
        from repro.algorithms import thomas_solve
        from repro.systems import TridiagonalBatch

        batch = random_block_dominant(2, 16, 1, rng=9)
        X = block_thomas_solve(batch)
        scalar = TridiagonalBatch(
            batch.A[..., 0, 0], batch.B[..., 0, 0], batch.C[..., 0, 0],
            batch.D[..., 0],
        )
        np.testing.assert_allclose(
            X[..., 0], thomas_solve(scalar), atol=1e-12
        )

    @pytest.mark.parametrize("n", [1, 2, 8, 32])
    def test_block_pcr_matches_dense(self, n):
        batch = random_block_dominant(2, n, 3, rng=n)
        _oracle_check(batch, block_pcr_solve(batch))

    @pytest.mark.parametrize("switch", [1, 4, 16, 64])
    def test_block_hybrid_matches_dense(self, switch):
        batch = random_block_dominant(2, 32, 3, rng=switch)
        _oracle_check(batch, block_pcr_thomas_solve(batch, switch))

    def test_block_pcr_split_roundtrip(self):
        batch = random_block_dominant(2, 16, 2, rng=5)
        split = block_pcr_split(batch, 2)
        assert split.shape == (8, 4, 2)
        X = block_pcr_unsplit_solution(block_thomas_solve(split), 2)
        _oracle_check(batch, X)

    def test_block_pcr_preserves_solution(self):
        batch = random_block_dominant(1, 8, 2, rng=6)
        X = block_dense_solve(batch)
        reduced = block_pcr_reduce(batch, 1)
        # After one step, row i couples rows i-2 and i+2.
        lhs = np.einsum("mnij,mnj->mni", reduced.B, X)
        lhs[:, 2:] += np.einsum("mnij,mnj->mni", reduced.A[:, 2:], X[:, :-2])
        lhs[:, :-2] += np.einsum("mnij,mnj->mni", reduced.C[:, :-2], X[:, 2:])
        np.testing.assert_allclose(lhs, reduced.D, atol=1e-9)

    def test_poisson_lines_solved(self):
        batch = poisson_2d_lines(2, 16, 12, rng=7)
        _oracle_check(batch, block_pcr_thomas_solve(batch, 4), tol=1e-8)

    def test_singular_block_detected(self):
        k = 2
        A = np.zeros((1, 4, k, k))
        B = np.zeros((1, 4, k, k))  # singular diagonal blocks
        batch = BlockTridiagonalBatch(A, B, A.copy(), np.ones((1, 4, k)))
        with pytest.raises(SingularSystemError):
            block_thomas_solve(batch)

    def test_split_indivisible_rejected(self):
        batch = random_block_dominant(1, 6, 2, rng=8)
        with pytest.raises(ConfigurationError):
            block_pcr_split(batch, 2)


class TestBlockSolver:
    def test_solve_small(self):
        batch = random_block_dominant(4, 16, 3, rng=10)
        solver = BlockMultiStageSolver("gtx470")
        result = solver.solve(batch)
        _oracle_check(batch, result.X)
        assert result.simulated_ms > 0

    def test_split_path_used_for_large_systems(self):
        solver = BlockMultiStageSolver("gtx470")
        k, dsize = 8, 8
        max_rows = solver.max_onchip_block_rows(k, dsize)
        batch = random_block_dominant(4, max_rows * 4, k, rng=11)
        result = solver.solve(batch)
        assert "split" in result.report.stage_ms()
        assert batch.residual(result.X).max() < 1e-9

    def test_onchip_capacity_shrinks_with_block_size(self):
        solver = BlockMultiStageSolver("gtx470")
        assert solver.max_onchip_block_rows(2, 8) > solver.max_onchip_block_rows(8, 8)

    def test_oversized_block_rejected(self):
        solver = BlockMultiStageSolver("8800gtx")
        from repro.util.errors import ResourceExhaustedError

        with pytest.raises(ResourceExhaustedError):
            solver.max_onchip_block_rows(128, 8)

    def test_non_pow2_rejected(self):
        batch = random_block_dominant(1, 6, 2, rng=12)
        with pytest.raises(PlanError):
            BlockMultiStageSolver("gtx470").solve(batch)

    def test_pinned_parameters_respected(self):
        batch = random_block_dominant(2, 32, 2, rng=13)
        solver = BlockMultiStageSolver(
            "gtx470", stage3_block_rows=8, thomas_switch=4
        )
        result = solver.solve(batch)
        assert result.stage3_block_rows == 8
        assert result.thomas_switch == 4
        _oracle_check(batch, result.X)

    def test_tuning_cached_per_block_size(self):
        solver = BlockMultiStageSolver("gtx280")
        p1 = solver.tuned_parameters(64, 4, 8)
        p2 = solver.tuned_parameters(128, 4, 8)
        assert p1 == p2  # same (k, dtype) class
        assert len(solver._tuned) == 1


@settings(max_examples=15, deadline=None)
@given(
    m=st.integers(min_value=1, max_value=4),
    n_exp=st.integers(min_value=0, max_value=5),
    k=st.integers(min_value=1, max_value=4),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
def test_block_hybrid_property(m, n_exp, k, seed):
    """The blocked hybrid matches the dense oracle for any shape/seed."""
    batch = random_block_dominant(m, 1 << n_exp, k, rng=seed)
    X = block_pcr_thomas_solve(batch, 8)
    ref = block_dense_solve(batch)
    scale = np.abs(ref).max() + 1.0
    assert np.abs(X - ref).max() / scale < 1e-9
