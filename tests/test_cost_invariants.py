"""Property tests on cost-model invariants.

These pin the *qualitative physics* of the machine model — the
monotonicities every mechanism must satisfy regardless of calibration
values. A calibration tweak that violates one of these would produce
nonsense tuning landscapes even if the headline figures still matched.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.pricing import price_base_kernel
from repro.gpu import PAPER_DEVICES, make_device
from repro.kernels import CoopPcrKernel, GlobalPcrKernel, KernelContext

COMMON = dict(max_examples=20, deadline=None)
device_name = st.sampled_from(sorted(PAPER_DEVICES))


def _ctx(name):
    return KernelContext(make_device(name).session())


@settings(**COMMON)
@given(
    name=device_name,
    m=st.integers(min_value=32, max_value=2048),
    t_exp=st.integers(min_value=2, max_value=8),
)
def test_base_kernel_monotone_in_systems(name, m, t_exp):
    """Twice the systems never solve faster."""
    dev = make_device(name)
    size = min(256, dev.max_onchip_system_size(4))
    t = min(1 << t_exp, size)
    one = price_base_kernel(dev, m, size, 4, thomas_switch=t, variant="coalesced")
    two = price_base_kernel(dev, 2 * m, size, 4, thomas_switch=t, variant="coalesced")
    assert two >= one * 0.999


@settings(**COMMON)
@given(
    name=device_name,
    steps=st.integers(min_value=1, max_value=8),
)
def test_split_traffic_linear_in_steps(name, steps):
    """Each extra split step adds exactly one sweep's raw traffic."""
    ctx = _ctx(name)
    base = GlobalPcrKernel().cost(ctx, 64, 4096, 4, steps)
    more = GlobalPcrKernel().cost(ctx, 64, 4096, 4, steps + 1)
    per_step = base.traffic.raw_bytes / steps
    assert more.traffic.raw_bytes == pytest.approx(
        base.traffic.raw_bytes + per_step
    )


@settings(**COMMON)
@given(
    name=device_name,
    stride_exp=st.integers(min_value=0, max_value=16),
)
def test_coop_efficiency_never_exceeds_stage2(name, stride_exp):
    """At any stride, the cooperative splitter's effective bandwidth is
    no better than the independent splitter's at the same stride."""
    ctx = _ctx(name)
    stride = 1 << stride_exp
    coop = CoopPcrKernel().cost_per_step(ctx, 1 << 20, 4, stride=stride)
    stage2 = GlobalPcrKernel().cost(
        ctx, 64, (1 << 20) // 64, 4, 1, start_stride=stride
    )
    assert coop.bandwidth_efficiency <= stage2.bandwidth_efficiency + 1e-12


@settings(**COMMON)
@given(
    name=device_name,
    t_small=st.integers(min_value=2, max_value=4),
)
def test_extreme_thomas_switches_never_optimal(name, t_small):
    """The cost curve over T must rise at both extremes relative to the
    middle (the Figure-6 'U'); degenerate switches cannot win."""
    dev = make_device(name)
    size = dev.max_onchip_system_size(4)

    def cost(t):
        return price_base_kernel(
            dev, 2048, size, 4, thomas_switch=t, variant="coalesced", stride=1
        )

    mid = min(cost(64), cost(128))
    assert cost(1 << t_small) > mid
    assert cost(size) >= mid


@settings(**COMMON)
@given(name=device_name, m=st.integers(min_value=1, max_value=64))
def test_saturation_helps_until_full(name, m):
    """Per-system split cost falls (or holds) as concurrency grows."""
    ctx = _ctx(name)
    from repro.gpu.cost import kernel_time_ms

    spec = ctx.spec
    small = kernel_time_ms(spec, GlobalPcrKernel().cost(ctx, m, 8192, 4, 1))
    large = kernel_time_ms(spec, GlobalPcrKernel().cost(ctx, 4 * m, 8192, 4, 1))
    per_small = small.total_ms / m
    per_large = large.total_ms / (4 * m)
    assert per_large <= per_small * 1.001
