"""Tests for Device / SimSession / SimReport plumbing."""

import pytest

from repro.gpu import (
    GEFORCE_GTX_470,
    ComputePhase,
    Device,
    KernelCost,
    make_device,
)
from repro.util.errors import DeviceError


def _toy_cost(name="k"):
    return KernelCost(
        name=name,
        grid_blocks=16,
        threads_per_block=128,
        regs_per_thread=8,
        phases=[ComputePhase(1000.0)],
    )


class TestDevice:
    def test_make_device_from_name(self):
        dev = make_device("gtx470")
        assert dev.name == "GeForce GTX 470"

    def test_make_device_from_spec(self):
        dev = make_device(GEFORCE_GTX_470)
        assert isinstance(dev, Device)

    def test_make_device_idempotent(self):
        dev = make_device("gtx280")
        assert make_device(dev) is dev

    def test_make_device_rejects_garbage(self):
        with pytest.raises(DeviceError):
            make_device(42)

    def test_properties_projection(self):
        dev = make_device("8800gtx")
        assert dev.properties().num_processors == 14

    def test_global_memory_check(self):
        dev = make_device("8800gtx")
        dev.check_fits_global(1024)
        with pytest.raises(DeviceError):
            dev.check_fits_global(10 * 1024**3)


class TestSession:
    def test_records_accumulate(self):
        sess = make_device("gtx470").session()
        sess.submit(_toy_cost("a"), stage="s1")
        sess.submit(_toy_cost("b"), stage="s2")
        assert sess.elapsed_ms > 0
        report = sess.report()
        assert report.num_launches == 2
        assert set(report.stage_ms()) == {"s1", "s2"}

    def test_total_is_sum_of_records(self):
        sess = make_device("gtx470").session()
        sess.submit(_toy_cost(), stage="x")
        sess.submit(_toy_cost(), stage="x")
        report = sess.report()
        assert report.total_ms == pytest.approx(
            sum(r.total_ms for r in report.records)
        )

    def test_closed_session_rejects_submits(self):
        sess = make_device("gtx470").session()
        sess.report()
        with pytest.raises(DeviceError):
            sess.submit(_toy_cost(), stage="late")

    def test_describe_mentions_stages(self):
        sess = make_device("gtx470").session()
        sess.submit(_toy_cost(), stage="my_stage")
        text = sess.report().describe()
        assert "my_stage" in text
        assert "GeForce GTX 470" in text

    def test_sessions_are_independent(self):
        dev = make_device("gtx470")
        s1, s2 = dev.session(), dev.session()
        s1.submit(_toy_cost(), stage="a")
        assert s2.elapsed_ms == 0
