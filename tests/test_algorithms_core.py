"""Unit tests for Thomas, CR, PCR and the hybrids against the LAPACK oracle."""

import numpy as np
import pytest

from repro.algorithms import (
    cr_pcr_solve,
    cr_solve,
    lu_factor,
    lu_solve,
    lu_solve_factored,
    pcr_reduce,
    pcr_solve,
    pcr_split,
    pcr_step,
    pcr_thomas_solve,
    pcr_unsplit_solution,
    recursive_doubling_solve,
    scipy_banded_solve,
    solve_with,
    thomas_solve,
    thomas_workspace_solve,
)
from repro.systems import generators
from repro.util.errors import ConfigurationError, SingularSystemError
from tests.conftest import assert_close_to_oracle


class TestThomas:
    def test_matches_oracle(self, small_batch):
        assert_close_to_oracle(small_batch, thomas_solve(small_batch))

    def test_single_equation(self):
        batch = generators.identity(3, 1)
        np.testing.assert_array_equal(thomas_solve(batch), batch.d)

    def test_size_two(self):
        batch = generators.random_dominant(4, 2, rng=0)
        assert_close_to_oracle(batch, thomas_solve(batch))

    def test_float32(self):
        batch = generators.random_dominant(4, 64, rng=0, dtype=np.float32)
        x = thomas_solve(batch)
        assert x.dtype == np.float32
        assert batch.residual(x).max() < 1e-5

    def test_singular_raises_with_index(self):
        batch = generators.singular(3, 8)
        with pytest.raises(SingularSystemError) as exc:
            thomas_solve(batch)
        assert exc.value.system_index == 0

    def test_singular_nocheck_returns_nonfinite(self):
        batch = generators.singular(1, 8)
        with np.errstate(divide="ignore", invalid="ignore"):
            x = thomas_solve(batch, check=False)
        assert not np.isfinite(x).all()

    def test_does_not_mutate_input(self, small_batch):
        b0 = small_batch.b.copy()
        thomas_solve(small_batch)
        np.testing.assert_array_equal(small_batch.b, b0)

    def test_workspace_variant_matches(self, small_batch):
        m, n = small_batch.shape
        cp = np.empty((m, n))
        dp = np.empty((m, n))
        x = np.empty((m, n))
        out = thomas_workspace_solve(small_batch, cp, dp, x)
        assert out is x
        np.testing.assert_allclose(out, thomas_solve(small_batch), atol=1e-14)


class TestCR:
    @pytest.mark.parametrize("n", [1, 2, 4, 16, 128])
    def test_matches_oracle_pow2(self, n):
        batch = generators.random_dominant(5, n, rng=n)
        assert_close_to_oracle(batch, cr_solve(batch))

    def test_rejects_non_pow2(self):
        batch = generators.random_dominant(2, 12, rng=0)
        with pytest.raises(ConfigurationError):
            cr_solve(batch)

    def test_poisson(self):
        batch = generators.poisson_1d(3, 64, rng=0)
        assert_close_to_oracle(batch, cr_solve(batch), factor=16)


class TestPCR:
    @pytest.mark.parametrize("n", [1, 2, 8, 64, 256])
    def test_matches_oracle_pow2(self, n):
        batch = generators.random_dominant(4, n, rng=n)
        assert_close_to_oracle(batch, pcr_solve(batch))

    def test_rejects_non_pow2(self):
        batch = generators.random_dominant(2, 24, rng=0)
        with pytest.raises(ConfigurationError):
            pcr_solve(batch)

    def test_step_preserves_solution(self):
        """After a PCR step the original solution satisfies the new
        (coupling-distance-2) equations: a x[i-2] + b x[i] + c x[i+2] = d."""
        batch = generators.random_dominant(3, 32, rng=1)
        x = scipy_banded_solve(batch)
        a, b, c, d = pcr_step(batch.a, batch.b, batch.c, batch.d, 1)
        xp = np.pad(x, ((0, 0), (2, 2)))
        lhs = a * xp[:, :-4] + b * x + c * xp[:, 4:]
        np.testing.assert_allclose(lhs, d, atol=1e-10)

    def test_reduce_zero_steps_identity(self, pow2_batch):
        out = pcr_reduce(pow2_batch, 0)
        np.testing.assert_array_equal(out.b, pow2_batch.b)

    def test_split_produces_independent_systems(self):
        batch = generators.random_dominant(2, 64, rng=3)
        split = pcr_split(batch, 3)
        assert split.shape == (16, 8)
        # Solving the split systems independently must reproduce the
        # original solution after unsplitting.
        x_split = thomas_solve(split)
        x = pcr_unsplit_solution(x_split, 3)
        assert_close_to_oracle(batch, x)

    def test_split_full_depth_equals_solve(self):
        batch = generators.random_dominant(2, 16, rng=4)
        split = pcr_split(batch, 4)  # size-1 systems
        x = pcr_unsplit_solution(split.d / split.b, 4)
        np.testing.assert_allclose(x, pcr_solve(batch), atol=1e-12)

    def test_split_indivisible_rejected(self):
        batch = generators.random_dominant(1, 12, rng=0)
        with pytest.raises(ConfigurationError):
            pcr_split(batch, 3)

    def test_unsplit_roundtrip(self):
        rng = np.random.default_rng(0)
        x = rng.standard_normal((4, 32))
        from repro.algorithms.pcr import _gather

        assert np.array_equal(pcr_unsplit_solution(_gather(x, 2), 2), x)


class TestPCRThomas:
    @pytest.mark.parametrize("switch", [1, 2, 16, 64, 1024])
    def test_matches_oracle_any_switch(self, switch):
        batch = generators.random_dominant(3, 128, rng=switch)
        assert_close_to_oracle(batch, pcr_thomas_solve(batch, switch))

    def test_switch_one_is_pure_thomas(self):
        batch = generators.random_dominant(2, 32, rng=0)
        np.testing.assert_allclose(
            pcr_thomas_solve(batch, 1), thomas_solve(batch), atol=1e-13
        )

    def test_switch_n_is_pure_pcr(self):
        batch = generators.random_dominant(2, 32, rng=0)
        np.testing.assert_allclose(
            pcr_thomas_solve(batch, 32), pcr_solve(batch), atol=1e-12
        )

    def test_rejects_non_pow2_switch(self):
        batch = generators.random_dominant(1, 64, rng=0)
        with pytest.raises(ConfigurationError):
            pcr_thomas_solve(batch, 48)

    def test_size_one(self):
        batch = generators.identity(2, 1)
        np.testing.assert_array_equal(pcr_thomas_solve(batch, 64), batch.d)


class TestCRPCR:
    @pytest.mark.parametrize("switch", [1, 8, 64, 512])
    def test_matches_oracle(self, switch):
        batch = generators.random_dominant(3, 256, rng=switch)
        assert_close_to_oracle(batch, cr_pcr_solve(batch, switch), factor=4)

    def test_degenerate_pure_pcr(self):
        batch = generators.random_dominant(2, 16, rng=1)
        np.testing.assert_allclose(
            cr_pcr_solve(batch, 16), pcr_solve(batch), atol=1e-12
        )

    def test_size_one(self):
        batch = generators.identity(2, 1)
        np.testing.assert_array_equal(cr_pcr_solve(batch), batch.d)


class TestRecursiveDoubling:
    @pytest.mark.parametrize("n", [1, 2, 16, 128, 1024])
    def test_matches_oracle(self, n):
        batch = generators.random_dominant(3, n, rng=n)
        # Projective scans round more than sweeps; allow extra headroom.
        assert_close_to_oracle(batch, recursive_doubling_solve(batch), factor=64)

    def test_rejects_non_pow2(self):
        batch = generators.random_dominant(1, 10, rng=0)
        with pytest.raises(ConfigurationError):
            recursive_doubling_solve(batch)


class TestLU:
    def test_solve_matches_oracle(self, small_batch):
        assert_close_to_oracle(small_batch, lu_solve(small_batch))

    def test_factor_reuse_across_rhs(self):
        batch = generators.random_dominant(4, 50, rng=6)
        factors = lu_factor(batch)
        rng = np.random.default_rng(1)
        for _ in range(3):
            d = rng.standard_normal(batch.shape)
            x = lu_solve_factored(factors, d)
            replaced = batch.with_rhs(d)
            assert replaced.residual(x).max() < 1e-12

    def test_factor_reconstructs_matrix(self):
        batch = generators.random_dominant(2, 12, rng=7)
        f = lu_factor(batch)
        n = batch.system_size
        # Rebuild A = L U and compare to the dense original.
        L = np.zeros((2, n, n))
        U = np.zeros((2, n, n))
        idx = np.arange(n)
        L[:, idx, idx] = 1.0
        L[:, idx[1:], idx[:-1]] = f.l[:, 1:]
        U[:, idx, idx] = f.u
        U[:, idx[:-1], idx[1:]] = f.c[:, :-1]
        np.testing.assert_allclose(L @ U, batch.to_dense(), atol=1e-12)

    def test_singular_detected(self):
        batch = generators.singular(1, 8)
        with pytest.raises(SingularSystemError):
            lu_factor(batch)


class TestRegistry:
    def test_all_registered_names_solve(self, odd_batch):
        from repro.algorithms import algorithm_names

        for name in algorithm_names():
            x = solve_with(name, odd_batch)
            assert odd_batch.residual(x).max() < 1e-9, name

    def test_unknown_name(self, odd_batch):
        with pytest.raises(ConfigurationError):
            solve_with("nope", odd_batch)

    def test_kwargs_forwarded(self):
        batch = generators.random_dominant(2, 64, rng=0)
        x = solve_with("pcr_thomas", batch, thomas_switch=8)
        assert batch.residual(x).max() < 1e-12
