"""Tests for the 3-D Douglas-Gunn ADI integrator and the export module."""

import numpy as np
import pytest

from repro.analysis import (
    figure5_to_csv,
    figure7_to_csv,
    figure8_to_csv,
    figures_to_json,
)
from repro.analysis.figures import Figure7Cell
from repro.apps import AdiDiffusion3D
from repro.core import MultiStageSolver
from repro.util.errors import ConfigurationError, ShapeError


@pytest.fixture(scope="module")
def solver():
    return MultiStageSolver("gtx470", "static")


class TestAdi3D:
    def test_mode_decay_matches_analytic(self, solver):
        n = 24
        adi = AdiDiffusion3D(
            (n, n, n), alpha=1.0, dx=1.0 / (n + 1), dt=2e-4, solver=solver
        )
        x = np.linspace(adi.dx, 1.0 - adi.dx, n)
        sx = np.sin(np.pi * x)
        u = sx[:, None, None] * sx[None, :, None] * sx[None, None, :]
        steps = 15
        u = adi.run(u, steps)
        expected = adi.analytic_mode_decay(1, adi.dt * steps)
        # Douglas-Gunn is first-order in time: allow a few percent.
        assert u.max() == pytest.approx(expected, rel=5e-2)

    def test_unconditional_stability(self, solver):
        adi = AdiDiffusion3D((12, 12, 12), dt=50.0, dx=0.1, solver=solver)
        assert adi.r > 1000
        rng = np.random.default_rng(0)
        u = rng.random((12, 12, 12))
        out = adi.run(u, 5)
        assert np.isfinite(out).all()
        assert np.abs(out).max() <= 1.0 + 1e-9

    def test_anisotropic_grid(self, solver):
        adi = AdiDiffusion3D((6, 10, 14), dt=1e-3, solver=solver)
        u = np.ones((6, 10, 14))
        out = adi.step(u)
        assert out.shape == (6, 10, 14)

    def test_three_sweeps_per_step(self, solver):
        adi = AdiDiffusion3D((8, 8, 8), dt=1e-3, solver=solver)
        adi.step(np.ones((8, 8, 8)))
        assert adi.report.sweeps == 3
        assert adi.report.systems_solved == 3 * 64

    def test_decays_toward_zero(self, solver):
        """With zero boundaries, everything diffuses away. (Moderate r:
        Douglas-Gunn is unconditionally stable but its splitting factor
        tends to 1 for very stiff steps, so decay needs resolved steps.)"""
        adi = AdiDiffusion3D((10, 10, 10), dt=0.005, dx=0.09, solver=solver)
        u = np.random.default_rng(1).random((10, 10, 10))
        norm0 = np.abs(u).max()
        out = adi.run(u, 80)
        assert np.abs(out).max() < 0.05 * norm0

    def test_validation(self, solver):
        with pytest.raises(ConfigurationError):
            AdiDiffusion3D((1, 8, 8), solver=solver)
        with pytest.raises(ConfigurationError):
            AdiDiffusion3D((8, 8, 8), alpha=-1, solver=solver)
        adi = AdiDiffusion3D((8, 8, 8), solver=solver)
        with pytest.raises(ShapeError):
            adi.step(np.ones((4, 8, 8)))


class TestExport:
    def test_series_csv(self):
        data = {"devA": {128: 0.5, 256: 1.0}, "devB": {128: 1.0, 256: None}}
        text = figure5_to_csv(data)
        lines = text.strip().splitlines()
        assert lines[0] == "device,stage3_size=128,stage3_size=256"
        assert lines[1].startswith("devA,0.5")
        assert lines[2].endswith(",")  # None -> empty cell

    def test_figure7_csv(self):
        cell = Figure7Cell(untuned_ms=10.0, static_ms=8.0, dynamic_ms=6.0)
        text = figure7_to_csv({"devA": {"1Kx1K": cell}})
        lines = text.strip().splitlines()
        assert "static_normalized" in lines[0]
        assert "0.8" in lines[1] and "0.6" in lines[1]

    def test_figure8_csv(self):
        text = figure8_to_csv({"1Kx1K": {"gpu_ms": 1.0, "cpu_ms": 10.0, "speedup": 10.0}})
        assert "1Kx1K,1.000000,10.000000,10.000000" in text

    def test_json_bundle(self):
        import json

        cell = Figure7Cell(untuned_ms=10.0, static_ms=8.0, dynamic_ms=6.0)
        doc = json.loads(
            figures_to_json(
                fig5={"d": {128: 1.0}},
                fig7={"d": {"1Kx1K": cell}},
                fig8={"1Kx1K": {"gpu_ms": 1.0, "cpu_ms": 2.0, "speedup": 2.0}},
            )
        )
        assert doc["figure5"]["d"]["128"] == 1.0
        assert doc["figure7"]["d"]["1Kx1K"]["dynamic_ms"] == 6.0
        assert "figure6" not in doc
