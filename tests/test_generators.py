"""Unit tests for workload generators."""

import numpy as np
import pytest

from repro.systems import generators, properties
from repro.util.errors import ConfigurationError


class TestRandomDominant:
    def test_shape_and_dtype(self):
        batch = generators.random_dominant(4, 33, rng=0, dtype=np.float32)
        assert batch.shape == (4, 33)
        assert batch.dtype == np.float32

    def test_strict_dominance(self):
        batch = generators.random_dominant(8, 64, dominance=2.0, rng=1)
        assert properties.is_diagonally_dominant(batch, strict=True)
        assert properties.dominance_margin(batch).min() >= 0.5

    def test_reproducible(self):
        b1 = generators.random_dominant(3, 16, rng=5)
        b2 = generators.random_dominant(3, 16, rng=5)
        np.testing.assert_array_equal(b1.b, b2.b)

    def test_distinct_seeds_differ(self):
        b1 = generators.random_dominant(3, 16, rng=5)
        b2 = generators.random_dominant(3, 16, rng=6)
        assert not np.array_equal(b1.b, b2.b)

    def test_generator_object_accepted(self):
        gen = np.random.default_rng(9)
        batch = generators.random_dominant(2, 8, rng=gen)
        assert batch.shape == (2, 8)

    def test_rejects_bad_dominance(self):
        with pytest.raises(ConfigurationError):
            generators.random_dominant(2, 8, dominance=0.5)

    def test_rejects_bad_counts(self):
        with pytest.raises(ConfigurationError):
            generators.random_dominant(0, 8)
        with pytest.raises(ConfigurationError):
            generators.random_dominant(2, -1)


class TestStructuredGenerators:
    def test_poisson_structure(self):
        batch = generators.poisson_1d(3, 32, rng=0)
        assert (batch.b == 2.0).all()
        assert (batch.a[:, 1:] == -1.0).all()
        assert (batch.c[:, :-1] == -1.0).all()
        assert properties.is_symmetric(batch)
        assert properties.is_toeplitz(batch)

    def test_cubic_spline_dominant_and_symmetric(self):
        batch = generators.cubic_spline(4, 50, rng=2)
        assert properties.is_diagonally_dominant(batch, strict=True)
        assert properties.is_symmetric(batch)

    def test_adi_lines_shape_matches_grid(self):
        batch = generators.adi_lines(16, 24, rng=0)
        assert batch.shape == (16, 24)
        assert properties.is_diagonally_dominant(batch, strict=True)

    def test_adi_rejects_nonpositive_params(self):
        with pytest.raises(ConfigurationError):
            generators.adi_lines(4, 4, dt=-1.0)

    def test_toeplitz_constant_diagonals(self):
        batch = generators.toeplitz(3, 16, sub=-1, diag=5, sup=-2, rng=0)
        assert properties.is_toeplitz(batch)
        assert not properties.is_symmetric(batch)

    def test_toeplitz_rejects_non_dominant(self):
        with pytest.raises(ConfigurationError):
            generators.toeplitz(1, 8, sub=-3, diag=4, sup=-3)

    def test_ocean_mixing_solvable(self):
        batch = generators.ocean_mixing(8, 40, rng=1)
        assert properties.is_diagonally_dominant(batch)
        # b = 1 - a - c with a, c <= 0 keeps the diagonal >= 1.
        assert (batch.b >= 1.0).all()


class TestHostileGenerators:
    def test_ill_conditioned_margin(self):
        batch = generators.ill_conditioned(2, 32, epsilon=1e-6)
        margin = properties.dominance_margin(batch)
        assert np.allclose(margin, 1e-6, rtol=1e-3)

    def test_singular_has_zero_row(self):
        batch = generators.singular(2, 16)
        row = 8
        assert (batch.b[:, row] == 0).all()
        assert (batch.a[:, row] == 0).all()
        assert (batch.c[:, row] == 0).all()

    def test_singular_rejects_tiny(self):
        with pytest.raises(ConfigurationError):
            generators.singular(1, 1)

    def test_identity_solution_is_rhs(self):
        batch = generators.identity(3, 9)
        np.testing.assert_array_equal(batch.matvec(batch.d), batch.d)

    def test_random_uniform_nonzero_diagonal(self):
        batch = generators.random_uniform(5, 64, rng=3)
        assert (np.abs(batch.b) >= 0.1 - 1e-12).all()


class TestFromSolution:
    def test_oracle_roundtrip(self):
        batch = generators.random_dominant(3, 20, rng=4)
        x = np.random.default_rng(0).standard_normal((3, 20))
        fixed = generators.from_solution(batch, x)
        assert fixed.residual(x).max() < 1e-14
