"""Tests for the command-line interface."""

import io


from repro.cli import main


def _run(argv):
    out = io.StringIO()
    code = main(argv, out=out)
    return code, out.getvalue()


class TestDevices:
    def test_lists_all_three(self):
        code, text = _run(["devices"])
        assert code == 0
        for name in ("GeForce 8800 GTX", "GeForce GTX 280", "GeForce GTX 470"):
            assert name in text

    def test_shows_onchip_capacity(self):
        _, text = _run(["devices"])
        assert "1024" in text  # GTX 470's on-chip max


class TestSolve:
    def test_paper_workload(self):
        code, text = _run(
            ["solve", "--workload", "1Kx1K", "--scale", "64", "--tuning", "static"]
        )
        assert code == 0
        assert "residual" in text
        assert "stage 3+4" in text

    def test_custom_workload(self):
        code, text = _run(
            ["solve", "--workload", "16x2048", "--scale", "1", "--tuning", "default"]
        )
        assert code == 0
        assert "16 x 2048" in text

    def test_bad_workload_is_reported(self):
        code, text = _run(["solve", "--workload", "banana"])
        assert code == 2
        assert "error:" in text

    def test_device_selection(self):
        code, text = _run(
            ["solve", "--device", "8800gtx", "--workload", "8x512", "--scale", "1"]
        )
        assert code == 0
        assert "8800" in text


class TestPlan:
    def test_single_device_program(self):
        code, text = _run(["plan", "--workload", "1Kx1K"])
        assert code == 0
        assert "solve program" in text
        assert "OnChipSolve" in text
        assert "priced steps:" in text
        assert "total" in text

    def test_custom_workload_shows_split_steps(self):
        code, text = _run(["plan", "--workload", "1x65536"])
        assert code == 0
        assert "SplitBlock" in text

    def test_distributed_program(self):
        code, text = _run(
            ["plan", "--workload", "1x2M", "--devices", "4", "--mode", "rows"]
        )
        assert code == 0
        assert "dist program" in text
        assert "Transfer" in text
        assert "ReducedSolve" in text

    def test_bad_workload_is_reported(self):
        code, text = _run(["plan", "--workload", "banana"])
        assert code == 2
        assert "error:" in text

    def test_fuse_flag_prints_per_instruction_diff(self):
        code, text = _run(["plan", "--workload", "4Kx4K", "--fuse"])
        assert code == 0
        assert "batched fusion diff (unfused -> fused):" in text
        # Removed staged steps, added batched steps, kept ends.
        assert "- dev0 compute stage3_pcr_thomas  OnChipSolve" in text
        assert "+ dev0 compute fused_sweep        BatchedSolve" in text
        assert "+ dev0 compute interleave         Interleave" in text
        assert "  dev0 compute                    Unpad" in text
        assert "vs unfused)" in text

    def test_fuse_flag_rejected_for_distributed_plans(self):
        code, text = _run(
            ["plan", "--workload", "1x2M", "--devices", "2", "--fuse"]
        )
        assert code == 2
        assert "fuse" in text.lower()


class TestTune:
    def test_prints_switch_points(self):
        code, text = _run(["tune", "--device", "gtx280"])
        assert code == 0
        assert "stage2->3" in text
        assert "model probes" in text

    def test_cache_roundtrip(self, tmp_path):
        cache = str(tmp_path / "t.json")
        code1, text1 = _run(["tune", "--device", "gtx470", "--cache", cache])
        code2, text2 = _run(["tune", "--device", "gtx470", "--cache", cache])
        assert code1 == code2 == 0
        assert "cache (0 probes)" in text2


class TestServeBench:
    def test_reports_speedup(self):
        code, text = _run(
            ["serve-bench", "--requests", "64", "--seed", "1", "--max-workers", "2"]
        )
        assert code == 0
        assert "64 mixed-shape requests" in text
        assert "merged solves" in text
        assert "speedup" in text

    def test_group_cap_flag(self):
        code, text = _run(
            ["serve-bench", "--requests", "32", "--max-group-systems", "8"]
        )
        assert code == 0
        assert "merged solves" in text


class TestFigures:
    def test_writes_all_outputs(self, tmp_path):
        out_dir = tmp_path / "figs"
        code, text = _run(["figures", "--out", str(out_dir)])
        assert code == 0
        for name in ("table1", "table2", "figure5", "figure6", "figure7", "figure8"):
            assert (out_dir / f"{name}.txt").exists(), name
        fig8 = (out_dir / "figure8.txt").read_text()
        assert "1x2M" in fig8
