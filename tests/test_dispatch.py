"""Tests for the hybrid GPU/CPU dispatcher (the Figure-8 boundary)."""

import pytest

from repro.algorithms import max_residual
from repro.core import HybridDispatcher
from repro.systems import generators
from repro.util.errors import ConfigurationError


@pytest.fixture(scope="module")
def dispatcher():
    return HybridDispatcher("gtx470")


class TestDecision:
    def test_parallel_workloads_go_to_gpu(self, dispatcher):
        """Figure 8: the GPU wins every parallel workload by 5-15x."""
        for m, n in ((1024, 1024), (2048, 2048), (4096, 4096)):
            choice = dispatcher.price(m, n)
            assert choice.engine == "gpu", (m, n)
            assert choice.advantage > 3.0

    def test_single_enormous_system_goes_to_cpu(self, dispatcher):
        """Figure 8's one CPU win: 1 system of 2M equations."""
        choice = dispatcher.price(1, 1 << 21)
        assert choice.engine == "cpu"
        assert 1.0 < choice.advantage < 3.0  # a modest win, as in the paper

    def test_single_systems_belong_to_cpu(self, dispatcher):
        """One system cannot fill the machine (paper §III-C), so the CPU
        wins single systems at essentially every size."""
        crossover = dispatcher.crossover_size(1)
        assert crossover is not None
        assert crossover <= 1 << 12

    def test_no_crossover_for_many_systems(self, dispatcher):
        """Machine-filling counts stay on the GPU through large sizes."""
        assert dispatcher.crossover_size(1024, max_exp=14) is None

    def test_crossover_monotone_in_count(self, dispatcher):
        """More parallel systems push the boundary out (or away)."""
        c1 = dispatcher.crossover_size(1)
        c4 = dispatcher.crossover_size(4)
        if c4 is not None:
            assert c4 >= c1

    def test_validation(self, dispatcher):
        with pytest.raises(ConfigurationError):
            dispatcher.price(0, 64)


class TestSolve:
    def test_gpu_path_numerics(self, dispatcher):
        batch = generators.random_dominant(256, 1024, rng=0)
        x, choice = dispatcher.solve(batch)
        assert choice.engine == "gpu"
        assert max_residual(batch, x) < 1e-12

    def test_cpu_path_numerics(self, dispatcher):
        batch = generators.random_dominant(1, 1 << 16, rng=1)  # float64
        choice = dispatcher.price(1, 1 << 16, dsize=8)
        x, used = dispatcher.solve(batch)
        assert used.engine == choice.engine
        assert max_residual(batch, x) < 1e-12

    def test_cpu_engine_actually_used(self, dispatcher):
        """A shape the CPU owns must route there and still solve exactly."""
        batch = generators.random_dominant(1, 1 << 21, rng=4)
        x, used = dispatcher.solve(batch)
        assert used.engine == "cpu"
        assert max_residual(batch, x) < 1e-12

    def test_choice_reports_both_prices(self, dispatcher):
        batch = generators.random_dominant(64, 512, rng=2)
        choice = dispatcher.choose(batch)
        assert choice.gpu_ms > 0 and choice.cpu_ms > 0
