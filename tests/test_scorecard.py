"""Tests for the reproduction scorecard (and its CLI command)."""

import io

import pytest

from repro.analysis import Check, render_scorecard, reproduction_scorecard
from repro.cli import main


@pytest.fixture(scope="module")
def checks():
    return reproduction_scorecard()


class TestScorecard:
    def test_all_claims_reproduced(self, checks):
        failed = [c for c in checks if not c.passed]
        assert not failed, render_scorecard(checks)

    def test_covers_every_claim_family(self, checks):
        claims = " ".join(c.claim for c in checks)
        for token in (
            "largest on-chip",
            "Fig.5",
            "Fig.6",
            "static tuning",
            "dynamic tuning",
            "Fig.8",
        ):
            assert token in claims, token

    def test_render(self, checks):
        text = render_scorecard(checks)
        assert "Reproduction scorecard" in text
        assert f"{len(checks)}/{len(checks)} claims reproduced" in text

    def test_render_flags_failures(self):
        text = render_scorecard(
            [Check(claim="x", expected="1", measured="2", passed=False)]
        )
        assert "FAIL" in text
        assert "0/1" in text

    def test_cli_verify(self):
        out = io.StringIO()
        code = main(["verify"], out=out)
        assert code == 0
        assert "claims reproduced" in out.getvalue()
