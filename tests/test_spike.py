"""Tests for the SPIKE / Wang partition solver."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.algorithms import scipy_banded_solve, spike_solve, thomas_solve
from repro.algorithms.spike import _auto_partitions
from repro.systems import generators
from repro.util.errors import ConfigurationError
from tests.conftest import assert_close_to_oracle


class TestSpike:
    @pytest.mark.parametrize("p", [1, 2, 4, 8, 16])
    def test_matches_oracle(self, p):
        batch = generators.random_dominant(5, 128, rng=p)
        assert_close_to_oracle(batch, spike_solve(batch, p), factor=8)

    def test_auto_partitions(self):
        assert _auto_partitions(128) == 16
        assert _auto_partitions(12) == 4  # chunks of 3
        assert _auto_partitions(7) == 2  # prime: balanced chunks of 4 and 3
        assert _auto_partitions(4) == 2
        assert _auto_partitions(3) == 1  # too small to keep 2 rows per chunk

    def test_auto_mode_solves(self):
        batch = generators.random_dominant(4, 96, rng=0)
        assert_close_to_oracle(batch, spike_solve(batch), factor=8)

    def test_single_partition_is_thomas(self):
        batch = generators.random_dominant(3, 50, rng=1)
        np.testing.assert_allclose(
            spike_solve(batch, 1), thomas_solve(batch), atol=1e-14
        )

    def test_invalid_partitions(self):
        batch = generators.random_dominant(1, 100, rng=2)
        with pytest.raises(ConfigurationError):
            spike_solve(batch, 100)  # chunks of 1
        with pytest.raises(ConfigurationError):
            spike_solve(batch, 51)  # 2 * 51 > 100: some chunk loses a row
        with pytest.raises(ConfigurationError):
            spike_solve(batch, 0)

    def test_non_divisible_partitions(self):
        """Explicit p no longer needs to divide n: chunks balance instead."""
        batch = generators.random_dominant(3, 100, rng=2)
        for p in (3, 6, 7, 50):
            assert_close_to_oracle(batch, spike_solve(batch, p), factor=8)

    def test_partition_bounds_balanced(self):
        from repro.algorithms.spike import partition_bounds

        bounds = partition_bounds(100, 3)
        assert bounds == ((0, 34), (34, 67), (67, 100))
        assert partition_bounds(8, 4) == ((0, 2), (2, 4), (4, 6), (6, 8))
        with pytest.raises(ConfigurationError):
            partition_bounds(7, 4)  # would leave a 1-row chunk

    def test_non_pow2_sizes(self):
        batch = generators.random_dominant(3, 90, rng=3)  # 90 = 2*3^2*5
        assert_close_to_oracle(batch, spike_solve(batch, 6), factor=8)

    def test_structured_systems(self):
        for gen in ("poisson_1d", "cubic_spline", "toeplitz"):
            batch = getattr(generators, gen)(4, 64, rng=4)
            x = spike_solve(batch, 8)
            oracle = scipy_banded_solve(batch)
            scale = np.abs(oracle).max() + 1.0
            assert np.abs(x - oracle).max() / scale < 1e-9, gen

    def test_registry_integration(self):
        from repro.algorithms import solve_with

        batch = generators.random_dominant(3, 100, rng=5)
        x = solve_with("spike", batch)
        assert batch.residual(x).max() < 1e-11


@settings(max_examples=25, deadline=None)
@given(
    m=st.integers(min_value=1, max_value=5),
    q=st.integers(min_value=2, max_value=20),
    p_exp=st.integers(min_value=0, max_value=4),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
def test_spike_property(m, q, p_exp, seed):
    """SPIKE matches the oracle for any (chunk size, partition count)."""
    p = 1 << p_exp
    batch = generators.random_dominant(m, p * q, rng=seed)
    x = spike_solve(batch, p)
    assert batch.residual(x).max() < 1e-9


@settings(max_examples=25, deadline=None)
@given(
    m=st.integers(min_value=1, max_value=4),
    n=st.integers(min_value=2, max_value=200),
    p=st.integers(min_value=1, max_value=16),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
def test_spike_property_uneven(m, n, p, seed):
    """SPIKE matches the oracle for arbitrary (size, partition) pairs."""
    from hypothesis import assume

    assume(n >= 2 * p)
    batch = generators.random_dominant(m, n, rng=seed)
    x = spike_solve(batch, p)
    assert batch.residual(x).max() < 1e-9
