"""Failure-injection and robustness tests across the stack.

What happens when inputs are hostile: singular systems, NaN/Inf
contamination, near-singular conditioning, precision cliffs, and
resource exhaustion. The contract: fail loudly (typed exceptions) or
degrade measurably — never return silently wrong answers.
"""

import numpy as np
import pytest

from repro.algorithms import (
    assert_solution,
    default_tolerance,
    max_residual,
    scipy_banded_solve,
    thomas_solve,
)
from repro.core import MultiStageSolver, SwitchPoints
from repro.gpu import make_device
from repro.systems import TridiagonalBatch, generators
from repro.util.errors import (
    NumericsError,
    ResourceExhaustedError,
    SingularSystemError,
)


class TestSingularInputs:
    def test_thomas_identifies_offending_system(self):
        good = generators.random_dominant(3, 16, rng=0)
        bad = generators.singular(1, 16)
        mixed = TridiagonalBatch(
            np.concatenate([good.a, bad.a]),
            np.concatenate([good.b, bad.b]),
            np.concatenate([good.c, bad.c]),
            np.concatenate([good.d, bad.d]),
        )
        with pytest.raises(SingularSystemError) as exc:
            thomas_solve(mixed)
        assert exc.value.system_index == 3

    def test_multistage_surfaces_singularity(self):
        batch = generators.singular(4, 1024)
        solver = MultiStageSolver("gtx470", "default")
        with np.errstate(all="ignore"), pytest.raises(
            (SingularSystemError, NumericsError)
        ):
            result = solver.solve(batch)
            # PCR may absorb the zero row into NaNs rather than a zero
            # pivot; verification must then catch it.
            assert_solution(batch, result.x)

    def test_verify_flag_catches_nan_contamination(self):
        batch = generators.random_dominant(2, 512, rng=1)
        poisoned = batch.with_rhs(
            np.where(np.arange(512) == 100, np.nan, batch.d)
        )
        solver = MultiStageSolver("gtx470", "default", verify=True)
        with np.errstate(all="ignore"), pytest.raises(NumericsError):
            solver.solve(poisoned)

    def test_inf_rhs_propagates_not_hides(self):
        batch = generators.random_dominant(1, 256, rng=2)
        poisoned = batch.with_rhs(np.full((1, 256), np.inf))
        with np.errstate(all="ignore"):
            result = MultiStageSolver("gtx470", "default").solve(poisoned)
        assert not np.isfinite(result.x).all()


class TestConditioning:
    def test_accuracy_degrades_gracefully(self):
        """Residuals stay bounded even at dominance margin 1e-8; errors
        grow with the condition number but never silently explode."""
        batch = generators.ill_conditioned(4, 256, epsilon=1e-8, rng=3)
        result = MultiStageSolver("gtx470", "static").solve(batch)
        oracle = scipy_banded_solve(batch)
        assert np.isfinite(result.x).all()
        # cond ~ 1/epsilon amplifies the RHS-relative residual (the
        # solution norm is ~1e7 times the RHS norm here); the solution
        # itself still agrees with the pivoted oracle to ~1e-9 relative.
        assert max_residual(batch, result.x) < 1e-2
        scale = np.abs(oracle).max() + 1.0
        assert np.abs(result.x - oracle).max() / scale < 1e-6

    def test_float32_tolerance_scales(self):
        b64 = generators.random_dominant(4, 1024, rng=4)
        b32 = b64.astype(np.float32)
        assert default_tolerance(b32) > 1e4 * default_tolerance(b64)
        result = MultiStageSolver("gtx470", "default").solve(b32)
        assert_solution(b32, result.x)

    def test_alternating_sign_diagonal(self):
        """Dominance with sign-alternating diagonals (no positivity
        assumption anywhere)."""
        batch = generators.random_dominant(8, 512, rng=5)
        assert (batch.b < 0).any() and (batch.b > 0).any()
        result = MultiStageSolver("gtx280", "dynamic").solve(batch)
        assert max_residual(batch, result.x) < 1e-12


class TestResourceExhaustion:
    def test_workload_exceeding_global_memory(self):
        dev = make_device("8800gtx")
        # Fabricate a batch object whose nbytes exceeds 768 MB without
        # allocating it: 8800's check runs before any kernel work.
        class FakeBatch:
            nbytes = 2 * 1024**3
            d = np.zeros((1, 1))

        from repro.util.errors import DeviceError

        with pytest.raises(DeviceError):
            dev.check_fits_global(FakeBatch.nbytes)

    def test_forced_oversized_stage3_is_clamped_not_crashed(self):
        sp = SwitchPoints(stage3_system_size=4096, thomas_switch=64)
        batch = generators.random_dominant(8, 8192, rng=6)
        result = MultiStageSolver("8800gtx", sp).solve(batch)
        assert result.plan.stage3_system_size == 256
        assert max_residual(batch, result.x) < 1e-12

    def test_kernel_refuses_impossible_configuration(self):
        from repro.kernels import KernelContext, PcrThomasSmemKernel

        ctx = KernelContext(make_device("8800gtx").session())
        with pytest.raises(ResourceExhaustedError):
            PcrThomasSmemKernel().cost(ctx, 4, 2048, 8, 1)


class TestDegenerateShapes:
    @pytest.mark.parametrize("shape", [(1, 1), (1, 2), (4096, 1), (1, 4096)])
    def test_extreme_aspect_ratios(self, shape):
        m, n = shape
        batch = generators.random_dominant(m, n, rng=m + n)
        result = MultiStageSolver("gtx470", "default").solve(batch)
        assert result.x.shape == (m, n)
        assert max_residual(batch, result.x) < 1e-11

    def test_constant_rhs(self):
        batch = generators.poisson_1d(4, 512).with_rhs(np.ones((4, 512)))
        result = MultiStageSolver("gtx470", "default").solve(batch)
        assert max_residual(batch, result.x) < 1e-9

    def test_zero_rhs_gives_zero_solution(self):
        batch = generators.random_dominant(4, 256, rng=7).with_rhs(
            np.zeros((4, 256))
        )
        result = MultiStageSolver("gtx470", "default").solve(batch)
        np.testing.assert_array_equal(result.x, 0.0)
