"""Shape-regression tests: the paper's published results, as assertions.

These pin the reproduction quality documented in EXPERIMENTS.md: optimal
switch points per device (Figures 5 and 6), tuning-strategy ordering and
headline savings (Figure 7 / §V), and the GPU↔CPU crossover (Figure 8).
"""

import pytest

from repro.analysis import (
    PAPER_FIG6_OPTIMA,
    ascii_table,
    figure5,
    figure6,
    figure7,
    figure8,
    format_value,
    headline_savings,
    section,
    table1,
    table2,
)


@pytest.fixture(scope="module")
def fig7():
    return figure7()


class TestFigure5:
    def test_structure(self):
        data = figure5(devices=("gtx470",))
        assert set(data) == {"gtx470"}
        assert set(data["gtx470"]) == {128, 256, 512, 1024}

    def test_infeasible_sizes_none(self):
        data = figure5()
        assert data["8800gtx"][512] is None
        assert data["8800gtx"][1024] is None
        assert data["gtx280"][1024] is None
        assert data["gtx470"][1024] is not None

    def test_8800_prefers_256(self):
        """§V: 'The GeForce 8800 ... prefers a larger system size of 256
        instead of 128.'"""
        data = figure5()["8800gtx"]
        assert data[256] == 1.0
        assert data[128] < 1.0

    def test_470_prefers_512_over_1024(self):
        """§V: 'it is beneficial to split the system one step further from
        size 1024 to 512 even though 1024 can already fit'."""
        data = figure5()["gtx470"]
        assert data[512] == 1.0
        assert data[1024] < 1.0

    def test_280_256_and_512_comparable(self):
        """§V: 'switching at system sizes 256 and 512 have comparable
        performance' on the GTX 280."""
        data = figure5()["gtx280"]
        assert min(data[256], data[512]) > 0.85


class TestFigure6:
    def test_normalised_to_best(self):
        for row in figure6().values():
            vals = [v for v in row.values() if v is not None]
            assert max(vals) == 1.0
            assert all(0 < v <= 1.0 for v in vals)

    def test_paper_optima(self):
        """§V: best switch is 64 on the 8800, 128 on the 280 and 470."""
        data = figure6()
        for device, expected in PAPER_FIG6_OPTIMA.items():
            row = data[device]
            best = max(
                (k for k, v in row.items() if v is not None),
                key=lambda k: row[k],
            )
            assert best in expected, (device, best)

    def test_too_early_switch_clearly_poor(self):
        """Switching at 16 subsystems starves the vector units."""
        for row in figure6().values():
            assert row[16] < 0.6


class TestFigure7:
    def test_structure(self, fig7):
        assert set(fig7) == {"8800gtx", "gtx280", "gtx470"}
        for row in fig7.values():
            assert set(row) == {"1Kx1K", "2Kx2K", "4Kx4K", "1x2M"}

    def test_dynamic_never_loses(self, fig7):
        """§V: 'dynamic self-tuning is always better than either static or
        no tuning' (2% slack for hill-climb locality)."""
        for device, row in fig7.items():
            for wl, cell in row.items():
                assert cell.dynamic_ms <= cell.untuned_ms * 1.02, (device, wl)
                assert cell.dynamic_ms <= cell.static_ms * 1.02, (device, wl)

    def test_static_beats_untuned_on_newer_parts(self, fig7):
        """Static tuning's wins come from the parts whose capabilities
        exceed the least-common-denominator defaults."""
        for device in ("gtx280", "gtx470"):
            for cell in fig7[device].values():
                assert cell.static_normalized <= 1.0

    def test_headline_savings_bands(self, fig7):
        """§V: static ≈ 17% average savings, dynamic ≈ 32%."""
        agg = headline_savings(fig7)
        assert 0.10 <= agg["static_avg_savings"] <= 0.25
        assert 0.25 <= agg["dynamic_avg_savings"] <= 0.45
        assert agg["dynamic_max_speedup"] >= 2.0

    def test_largest_speedups_on_largest_systems(self, fig7):
        """§V: 'with the largest speedups on the largest systems' — holds
        on the parts where splitting strategy has room to differ (the
        8800's residency ceiling caps what tuning can recover there)."""
        for device in ("gtx280", "gtx470"):
            row = fig7[device]
            assert (
                row["1x2M"].dynamic_normalized
                <= row["1Kx1K"].dynamic_normalized
            )


class TestFigure8:
    @pytest.fixture(scope="class")
    def fig8(self):
        return figure8()

    def test_gpu_wins_parallel_workloads(self, fig8):
        """Paper: 6–11x on the parallel workloads; we accept 4–16x."""
        for wl in ("1Kx1K", "2Kx2K", "4Kx4K"):
            assert 4.0 <= fig8[wl]["speedup"] <= 16.0, (wl, fig8[wl])

    def test_cpu_wins_single_enormous_system(self, fig8):
        """Paper: 0.7x on 1×2M — the CPU's one win."""
        assert fig8["1x2M"]["speedup"] < 1.0

    def test_speedup_decreases_with_size(self, fig8):
        """Fig. 8: 'increasing the size and count of systems results in a
        slightly decreasing advantage for the GPU'."""
        assert (
            fig8["1Kx1K"]["speedup"]
            > fig8["2Kx2K"]["speedup"]
            > fig8["4Kx4K"]["speedup"]
            > fig8["1x2M"]["speedup"]
        )


class TestTables:
    def test_table1_rows(self):
        rows = table1()
        assert len(rows) == 3
        names = [r["name"] for r in rows]
        assert "GeForce GTX 470" in names
        gtx280 = next(r for r in rows if "280" in r["name"])
        assert gtx280["global_memory_bandwidth_gb_s"] == 141.7
        assert gtx280["shared_memory_kb"] == 16

    def test_table2_rows(self):
        rows = table2("gtx470")
        params = [r[0] for r in rows]
        for expected in (
            "Global Mem",
            "Processors",
            "Constant Memory",
            "Shared Memory",
            "Register Memory",
            "Grid Dimensions",
        ):
            assert expected in params


class TestReportRendering:
    def test_ascii_table(self):
        text = ascii_table(
            ["a", "bb"], [[1, 2.5], ["x", None]], title="T"
        )
        assert "T" in text
        assert "| a" in text
        assert "2.5" in text
        assert "-" in text

    def test_format_value(self):
        assert format_value(None) == "-"
        assert format_value(True) == "yes"
        assert format_value(1234.0) == "1,234"
        assert format_value(0.123456) == "0.123"

    def test_section(self):
        assert "Results" in section("Results")
