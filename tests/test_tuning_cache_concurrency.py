"""Concurrency behaviour of :class:`TuningCache`.

The batched solve service resolves switch points from many worker
threads against one shared cache, so the store's read-modify-write and
the disk load/save must be lock-protected. These tests hammer the cache
from 8 threads — same key, distinct keys, and the ``get_or_tune`` fast
path — and pin the invariants the service relies on: no lost updates,
one agreed-upon result per key, and a consistent on-disk file.
"""

import threading


from repro.core import SwitchPoints
from repro.core.tuning import MachineQueryTuner, TuningCache
from repro.gpu import make_device

THREADS = 8
ROUNDS = 50


def _sp(tag: int) -> SwitchPoints:
    return SwitchPoints(
        stage1_target_systems=1 + tag,
        stage3_system_size=256,
        thomas_switch=64,
        source="manual",
    )


def _hammer(worker, threads=THREADS):
    """Run ``worker(thread_index)`` on N threads; re-raise any failure."""
    errors = []
    barrier = threading.Barrier(threads)

    def body(idx):
        try:
            barrier.wait()
            worker(idx)
        except Exception as exc:  # pragma: no cover - failure path
            errors.append(exc)

    ts = [threading.Thread(target=body, args=(i,)) for i in range(threads)]
    for t in ts:
        t.start()
    for t in ts:
        t.join()
    assert not errors, errors


def test_concurrent_puts_distinct_keys_lose_nothing(tmp_path):
    cache = TuningCache(tmp_path / "tuned.json")

    def worker(idx):
        for r in range(ROUNDS):
            cache.put(f"dev{idx}", 4, _sp(r), workload_class=f"w{r}")

    _hammer(worker)
    assert len(cache) == THREADS * ROUNDS
    # The persisted file holds every entry too (no torn/partial saves).
    reloaded = TuningCache(tmp_path / "tuned.json")
    assert len(reloaded) == THREADS * ROUNDS
    for idx in range(THREADS):
        for r in range(ROUNDS):
            got = reloaded.get(f"dev{idx}", 4, workload_class=f"w{r}")
            assert got == _sp(r)


def test_concurrent_same_key_read_modify_write(tmp_path):
    cache = TuningCache(tmp_path / "tuned.json")

    def worker(idx):
        for r in range(ROUNDS):
            cache.put("shared", 8, _sp(idx))
            got = cache.get("shared", 8)
            # Always a complete, valid entry — never a half-written dict.
            assert got is not None
            assert 1 <= got.stage1_target_systems <= THREADS

    _hammer(worker)
    final = TuningCache(tmp_path / "tuned.json").get("shared", 8)
    assert final is not None


def test_get_or_tune_converges_to_one_result():
    cache = TuningCache()
    calls = []
    release = threading.Event()
    results = {}

    def tune_factory(idx):
        def tune():
            calls.append(idx)
            release.wait(timeout=10)  # all concurrent misses finish together
            return _sp(idx)

        return tune

    def worker(idx):
        if idx == THREADS - 1:
            release.set()
        results[idx] = cache.get_or_tune("gtx470", 4, tune_factory(idx))

    _hammer(worker)
    # Concurrent misses may each run the tune, but exactly one result is
    # stored and every caller returns it.
    assert len(set(results.values())) == 1
    assert len(cache) == 1
    assert cache.get("gtx470", 4) == next(iter(results.values()))


def test_get_or_tune_hits_skip_the_factory():
    cache = TuningCache()
    cache.put("gtx470", 4, _sp(3))

    def boom():  # pragma: no cover - must not run
        raise AssertionError("factory ran on a cache hit")

    def worker(idx):
        for _ in range(ROUNDS):
            assert cache.get_or_tune("gtx470", 4, boom) == _sp(3)

    _hammer(worker)


def test_real_tuner_through_shared_cache_agrees():
    """8 threads resolving the same device through one cache all agree."""
    cache = TuningCache()
    device = make_device("gtx470")
    results = {}

    def worker(idx):
        def tune():
            return MachineQueryTuner().switch_points(device, 0, 0, 4)

        results[idx] = cache.get_or_tune(device.name, 4, tune, "service")

    _hammer(worker)
    assert len(set(results.values())) == 1
    assert len(cache) == 1


def test_concurrent_mixed_get_put_clear(tmp_path):
    """No operation interleaving corrupts the store or the file."""
    cache = TuningCache(tmp_path / "tuned.json")

    def worker(idx):
        for r in range(ROUNDS):
            op = (idx + r) % 3
            if op == 0:
                cache.put(f"dev{idx % 2}", 4, _sp(idx))
            elif op == 1:
                got = cache.get(f"dev{(idx + 1) % 2}", 4)
                assert got is None or isinstance(got, SwitchPoints)
            else:
                len(cache)

    _hammer(worker)
    # Whatever interleaving happened, the file parses back cleanly.
    TuningCache(tmp_path / "tuned.json")
