"""Property-based tests on the machine model and the solver pipeline."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.algorithms import max_residual
from repro.core import MultiStageSolver, SwitchPoints, plan_solve, simulate_plan
from repro.gpu import (
    PAPER_DEVICES,
    bus_saturation,
    compute_occupancy,
    latency_efficiency,
    make_device,
    strided_access_penalty,
)
from repro.systems import generators

COMMON = dict(max_examples=25, deadline=None)

device_name = st.sampled_from(sorted(PAPER_DEVICES))
pow2 = st.integers(min_value=0, max_value=14).map(lambda e: 1 << e)


@settings(**COMMON)
@given(name=device_name, stride=st.integers(min_value=1, max_value=10_000))
def test_strided_penalty_bounded(name, stride):
    spec = PAPER_DEVICES[name]
    penalty = strided_access_penalty(spec, stride)
    assert 1.0 <= penalty <= spec.uncoalesced_penalty_cap


@settings(**COMMON)
@given(name=device_name, blocks=st.integers(min_value=1, max_value=10_000))
def test_saturation_bounded(name, blocks):
    assert 0.0 < bus_saturation(PAPER_DEVICES[name], blocks) <= 1.0


@settings(**COMMON)
@given(
    name=device_name,
    threads=st.integers(min_value=1, max_value=512),
    smem=st.integers(min_value=0, max_value=16 * 1024),
    regs=st.integers(min_value=0, max_value=16),
)
def test_occupancy_within_device_limits(name, threads, smem, regs):
    spec = PAPER_DEVICES[name]
    occ = compute_occupancy(spec, threads, smem, regs)
    assert 1 <= occ.resident_blocks <= spec.max_blocks_per_processor
    assert occ.resident_threads <= spec.max_threads_per_processor
    assert 0.0 < latency_efficiency(spec, occ) <= 1.0


@settings(**COMMON)
@given(
    name=device_name,
    m=st.integers(min_value=1, max_value=4096),
    n_exp=st.integers(min_value=1, max_value=21),
)
def test_plan_always_valid(name, m, n_exp):
    """Every (m, n) workload yields a plan that conserves split depth and
    respects device capacity."""
    n = 1 << n_exp
    device = make_device(name)
    sp = SwitchPoints()
    plan = plan_solve(device, m, n, 4, sp)
    assert plan.stage3_system_size <= device.max_onchip_system_size(4)
    assert (
        plan.stage3_system_size << plan.total_split_steps
    ) == plan.system_size
    assert plan.thomas_switch <= plan.stage3_system_size
    assert plan.stride == 1 << plan.total_split_steps


@settings(**COMMON)
@given(
    name=device_name,
    m=st.integers(min_value=1, max_value=2048),
    n_exp=st.integers(min_value=6, max_value=20),
)
def test_pricing_positive_and_finite(name, m, n_exp):
    device = make_device(name)
    _, report = simulate_plan(device, m, 1 << n_exp, 4, SwitchPoints())
    assert 0 < report.total_ms < 1e7
    assert report.num_launches >= 1


@settings(**COMMON)
@given(
    name=device_name,
    m=st.integers(min_value=16, max_value=512),
    n_exp=st.integers(min_value=8, max_value=18),
)
def test_more_systems_cost_no_less(name, m, n_exp):
    """Weak monotonicity: doubling a stage-1-free workload never reduces
    time. (Below the stage-1 target the plan structure itself changes
    with m, and a larger batch can legitimately need fewer cooperative
    steps — so the property is scoped to m >= the default target.)"""
    device = make_device(name)
    n = 1 << n_exp
    _, small = simulate_plan(device, m, n, 4, SwitchPoints())
    _, large = simulate_plan(device, 2 * m, n, 4, SwitchPoints())
    assert large.total_ms >= small.total_ms * 0.999


@settings(max_examples=10, deadline=None)
@given(
    name=device_name,
    m=st.integers(min_value=1, max_value=8),
    n_exp=st.integers(min_value=2, max_value=13),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
def test_solver_end_to_end_correct(name, m, n_exp, seed):
    """Whatever the plan shape, the numerics solve the system."""
    batch = generators.random_dominant(m, 1 << n_exp, rng=seed)
    result = MultiStageSolver(name, "default").solve(batch)
    assert max_residual(batch, result.x) < 1e-10
    assert np.isfinite(result.simulated_ms)
