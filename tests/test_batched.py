"""Tests for the interleaved batch layout and the fused solve path.

The tentpole contract: interleave/deinterleave round-trip bit-exactly,
the batched kernels reproduce the row-major algorithms bit-for-bit, and
a fused (BatchedSolve) lowering of any solve plan returns the same
floats as the unfused staged chain — with execute/price span parity and
the fault hooks still firing on the fused steps.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms import pcr_solve, pcr_thomas_solve, thomas_solve
from repro.core import MultiStageSolver
from repro.core.planner import plan_solve
from repro.core.tuning import make_tuner
from repro.faults import (
    FaultInjector,
    FaultPlan,
    RetryPolicy,
    TransientKernelFault,
)
from repro.gpu import make_device
from repro.ir import Engine
from repro.kernels import (
    batched_pcr_solve,
    batched_pcr_thomas_sweep,
    batched_thomas_sweep,
    dtype_size,
)
from repro.obs import Tracer
from repro.service import BatchSolveService
from repro.systems import BatchedTridiagonal, deinterleave, generators, interleave
from repro.systems.tridiagonal import TridiagonalBatch
from repro.util.errors import ConfigurationError, ShapeError

pytestmark = pytest.mark.fusion


def _static_switch(device, m, n, dsize):
    return make_tuner("static").switch_points(device, m, n, dsize)


def _solve_both(device_name, m, n, *, dtype=np.float64, rng=11):
    """Solve one batch unfused and fused; returns both results."""
    device = make_device(device_name)
    batch = generators.random_dominant(m, n, rng=rng, dtype=dtype)
    switch = _static_switch(device, m, n, dtype_size(batch.dtype))
    unfused = MultiStageSolver(device, switch, fuse=False).solve(batch)
    fused = MultiStageSolver(device, switch, fuse=True).solve(batch)
    return unfused, fused


# ---------------------------------------------------------------------------
# Layout round-trips
# ---------------------------------------------------------------------------


class TestInterleaveRoundTrip:
    @settings(max_examples=30, deadline=None)
    @given(
        m=st.integers(min_value=1, max_value=40),
        n=st.integers(min_value=1, max_value=200),
        dsize=st.sampled_from([4, 8]),
    )
    def test_round_trip_is_bit_exact(self, m, n, dsize):
        dtype = np.float32 if dsize == 4 else np.float64
        batch = generators.random_dominant(
            m, n, rng=m * 1009 + n, dtype=dtype
        )
        soa = interleave(batch)
        assert soa.shape == (m, n)
        assert soa.layout_shape == (n, m)
        back = deinterleave(soa)
        for name in ("a", "b", "c", "d"):
            np.testing.assert_array_equal(
                getattr(back, name), getattr(batch, name)
            )
            assert getattr(back, name).dtype == dtype

    @settings(max_examples=20, deadline=None)
    @given(
        counts=st.lists(
            st.integers(min_value=1, max_value=7), min_size=1, max_size=5
        ),
        n=st.integers(min_value=2, max_value=64),
    )
    def test_ragged_interleave_all_concatenates_in_order(self, counts, n):
        batches = [
            generators.random_dominant(m, n, rng=i * 31 + m)
            for i, m in enumerate(counts)
        ]
        soa = BatchedTridiagonal.interleave_all(batches)
        assert soa.num_systems == sum(counts)
        merged = soa.deinterleave()
        offset = 0
        for batch in batches:
            for name in ("a", "b", "c", "d"):
                np.testing.assert_array_equal(
                    getattr(merged, name)[
                        offset : offset + batch.num_systems
                    ],
                    getattr(batch, name),
                )
            offset += batch.num_systems

    def test_interleave_all_rejects_mixed_sizes_and_empty(self):
        a = generators.random_dominant(2, 64, rng=0)
        b = generators.random_dominant(2, 128, rng=1)
        with pytest.raises(ShapeError):
            BatchedTridiagonal.interleave_all([a, b])
        with pytest.raises(ShapeError):
            BatchedTridiagonal.interleave_all([])

    def test_corner_convention_enforced(self):
        n, m = 4, 3
        arr = np.ones((n, m))
        soa = BatchedTridiagonal(arr, arr * 2, arr, arr)
        assert not soa.a[0, :].any()
        assert not soa.c[-1, :].any()


# ---------------------------------------------------------------------------
# Batched kernels vs the row-major algorithms
# ---------------------------------------------------------------------------


class TestBatchedKernelParity:
    @pytest.mark.parametrize("dtype", [np.float32, np.float64])
    @pytest.mark.parametrize("m,n", [(1, 64), (17, 100), (200, 8)])
    def test_thomas_sweep_bit_identical(self, dtype, m, n):
        batch = generators.random_dominant(m, n, rng=5, dtype=dtype)
        x_rows = thomas_solve(batch)
        x_soa = batched_thomas_sweep(interleave(batch))
        np.testing.assert_array_equal(x_rows, np.ascontiguousarray(x_soa.T))

    @pytest.mark.parametrize("m,n", [(3, 64), (16, 256)])
    def test_pcr_bit_identical(self, m, n):
        batch = generators.random_dominant(m, n, rng=6)
        np.testing.assert_array_equal(
            pcr_solve(batch),
            np.ascontiguousarray(batched_pcr_solve(interleave(batch)).T),
        )

    @pytest.mark.parametrize("switch", [8, 64])
    def test_pcr_thomas_bit_identical(self, switch):
        batch = generators.random_dominant(9, 512, rng=7)
        np.testing.assert_array_equal(
            pcr_thomas_solve(batch, switch),
            np.ascontiguousarray(
                batched_pcr_thomas_sweep(interleave(batch), switch).T
            ),
        )


# ---------------------------------------------------------------------------
# Fused solve path
# ---------------------------------------------------------------------------


class TestFusedSolveParity:
    @pytest.mark.parametrize("device", ["8800gtx", "gtx280", "gtx470"])
    @pytest.mark.parametrize(
        "m,n", [(4, 512), (16, 2048), (3, 100), (1000, 64)]
    )
    def test_fused_solution_bit_identical(self, device, m, n):
        unfused, fused = _solve_both(device, m, n)
        np.testing.assert_array_equal(unfused.x, fused.x)

    @pytest.mark.parametrize("dtype", [np.float32, np.float64])
    def test_fused_parity_single_precision(self, dtype):
        unfused, fused = _solve_both("gtx470", 7, 4096, dtype=dtype)
        np.testing.assert_array_equal(unfused.x, fused.x)

    @settings(max_examples=15, deadline=None)
    @given(
        m=st.integers(min_value=1, max_value=12),
        n=st.integers(min_value=8, max_value=3000),
    )
    def test_property_fused_parity(self, m, n):
        unfused, fused = _solve_both("gtx280", m, n, rng=m * 7919 + n)
        np.testing.assert_array_equal(unfused.x, fused.x)

    def test_fused_execute_price_parity(self):
        device = make_device("gtx470")
        batch = generators.random_dominant(8, 2048, rng=13)
        switch = _static_switch(device, 8, 2048, 8)
        solver = MultiStageSolver(device, switch, fuse=True)
        result = solver.solve(batch)
        program = result.plan.lower(device, 8, fuse=True)
        priced = Engine.for_device(device).price(program)
        assert result.report.total_ms == priced.report.total_ms
        assert result.report.stage_ms() == priced.report.stage_ms()

    def test_fused_span_trees_match_priced(self):
        device = make_device("gtx470")
        batch = generators.random_dominant(4, 4096, rng=14)
        switch = _static_switch(device, 4, 4096, 8)
        tracer = Tracer()
        result = MultiStageSolver(
            device, switch, tracer=tracer, fuse=True
        ).solve(batch)
        (root,) = tracer.spans()
        (executed,) = root.children

        price_tracer = Tracer()
        engine = Engine.for_device(device)
        engine.tracer = price_tracer
        engine.price(result.plan.lower(device, 8, fuse=True))
        (priced,) = price_tracer.spans()
        assert priced == executed
        # The fused program really ran the batched path.
        stages = {s.attr("op") for s in executed.children}
        assert "BatchedSolve" in stages
        assert "Interleave" in stages

    def test_fault_hooks_fire_on_fused_steps(self):
        batch = generators.random_dominant(4, 2048, rng=15)
        device = make_device("gtx470")
        switch = _static_switch(device, 4, 2048, 8)
        baseline = MultiStageSolver(device, switch, fuse=True).solve(batch)
        inj = FaultInjector(
            FaultPlan(
                seed=0,
                faults=(
                    TransientKernelFault(probability=1.0, max_failures=2),
                ),
                retry=RetryPolicy(max_attempts=4, budget=16),
            )
        )
        result = MultiStageSolver(
            device, switch, faults=inj, fuse=True
        ).solve(batch)
        np.testing.assert_array_equal(result.x, baseline.x)
        assert inj.log.count("transient", "injected") == 2
        assert inj.log.count("transient", "retried") == 2
        assert inj.log.overhead_ms > 0.0

    def test_fuse_argument_validated(self):
        with pytest.raises(ConfigurationError):
            MultiStageSolver("gtx470", fuse="always")

    def test_auto_mode_picks_the_cheaper_lowering(self):
        device = make_device("gtx280")
        engine = Engine.for_device(device)
        for m, n in [(400, 64), (16, 4096)]:
            switch = _static_switch(device, m, n, 8)
            plan = plan_solve(device, m, n, 8, switch)
            unfused_ms = engine.price(plan.lower(device, 8)).total_ms
            fused_ms = engine.price(
                plan.lower(device, 8, fuse=True)
            ).total_ms
            solver = MultiStageSolver(device, switch, fuse="auto")
            batch = generators.random_dominant(m, n, rng=m + n)
            result = solver.solve(batch)
            assert result.report.total_ms == min(unfused_ms, fused_ms)
            # The choice is memoised per (signature, count, dsize).
            assert solver._fuse_choice
        # And auto never changes the answer.
        switch = _static_switch(device, 16, 4096, 8)
        batch = generators.random_dominant(16, 4096, rng=4112)
        unfused = MultiStageSolver(device, switch, fuse=False).solve(batch)
        auto = MultiStageSolver(device, switch, fuse="auto").solve(batch)
        np.testing.assert_array_equal(auto.x, unfused.x)


# ---------------------------------------------------------------------------
# Service integration
# ---------------------------------------------------------------------------


class TestServiceFusion:
    @pytest.mark.parametrize("fuse", [False, True, "auto"])
    def test_service_modes_bit_identical(self, fuse):
        requests = generators.mixed_requests(
            40, rng=3, sizes=(512, 1024, 2048)
        )
        service = BatchSolveService(
            "gtx280", "static", max_workers=4, max_pending=40, fuse=fuse
        )
        with service:
            results = service.solve_many(requests)
        solvers = {}
        for batch, res in zip(requests, results):
            key = str(batch.dtype)
            if key not in solvers:
                solvers[key] = MultiStageSolver(
                    "gtx280",
                    service.switch_points_for(dtype=batch.dtype),
                )
            direct = solvers[key].solve(batch)
            np.testing.assert_array_equal(direct.x, res.x)
        snap = service.stats.snapshot()
        assert snap["requests_completed"] == 40
        assert snap["requests_failed"] == 0

    def test_split_heavy_fused_service_is_faster(self):
        requests = generators.mixed_requests(
            60, rng=9, sizes=(2048, 4096), dtypes=(np.float64,)
        )

        def run(fuse):
            service = BatchSolveService(
                "gtx280",
                "static",
                max_workers=4,
                max_pending=60,
                fuse=fuse,
            )
            with service:
                service.solve_many(requests)
            return service.stats.simulated_ms

        fused_ms, unfused_ms = run(True), run(False)
        assert fused_ms < unfused_ms


def test_single_system_helpers_round_trip():
    batch = generators.random_dominant(5, 32, rng=21)
    single = batch.system(2).as_batch()
    assert single.num_systems == 1
    stacked = TridiagonalBatch.stack(
        [batch.system(i).as_batch() for i in range(batch.num_systems)]
    )
    for name in ("a", "b", "c", "d"):
        np.testing.assert_array_equal(
            getattr(stacked, name), getattr(batch, name)
        )
