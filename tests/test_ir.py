"""Tests for the instruction IR: lowering, passes, and the engine.

The contract under test is the tentpole invariant: a plan lowers to ONE
program, and interpreting that program with data (execute) or without
(price) gives identical timing — while execution's numerics stay
bit-identical to the pre-IR kernel sequence.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.padding import pad_pow2, unpad_solution
from repro.algorithms.pcr import pcr_unsplit_solution
from repro.core import MultiStageSolver, SwitchPoints, simulate_plan
from repro.core.planner import plan_solve
from repro.core.tuning import TuningCache, make_tuner
from repro.dist import DistributedSolver
from repro.gpu import make_device
from repro.ir import (
    BatchedSolve,
    Engine,
    Interleave,
    OnChipSolve,
    Pad,
    Program,
    SplitBlock,
    SplitCoop,
    Step,
    Transfer,
    Unpad,
    Unsplit,
    concat_solve_programs,
    fuse_batched,
    lower_solve_plan,
    run_default_passes,
    signature_text,
)
from repro.kernels import (
    CoopPcrKernel,
    GlobalPcrKernel,
    KernelContext,
    PcrThomasSmemKernel,
    dtype_size,
)
from repro.systems import generators, paper_workloads
from repro.util.errors import PlanError


def _static_switch(device, m, n, dsize):
    return make_tuner("static").switch_points(device, m, n, dsize)


def _reference_solve(device, batch, plan):
    """The pre-IR kernel sequence, inlined verbatim from the old solver."""
    padded, original_n = pad_pow2(batch)
    session = device.session()
    ctx = KernelContext(session)
    work = padded
    if plan.uses_stage1:
        work = CoopPcrKernel().run(ctx, work, plan.stage1_steps)
    if plan.uses_stage2:
        work = GlobalPcrKernel().run(
            ctx,
            work,
            plan.stage3_system_size,
            start_stride=1 << plan.stage1_steps,
        )
    kernel = PcrThomasSmemKernel(
        thomas_switch=plan.thomas_switch, variant=plan.variant
    )
    x = kernel.run(ctx, work, stride=plan.stride)
    x = pcr_unsplit_solution(x, plan.stage2_steps)
    x = pcr_unsplit_solution(x, plan.stage1_steps)
    x = unpad_solution(x, original_n)
    return x, session.report()


class TestGoldenPrograms:
    """Pin the lowered programs of the paper's Figure-6/7 workloads."""

    # (op name, *op fields, step shape) per step; statically tuned, f64.
    GOLDEN = {
        "1Kx1K": [
            ("Pad", 1024, (1024, 1024)),
            ("OnChipSolve", 64, "coalesced", 1, (1024, 1024)),
            ("Unpad", (1024, 1024)),
        ],
        "2Kx2K": [
            ("Pad", 2048, (2048, 2048)),
            ("SplitBlock", 1, 1, (2048, 2048)),
            ("OnChipSolve", 64, "coalesced", 2, (4096, 1024)),
            ("Unsplit", 1, (2048, 2048)),
            ("Unpad", (2048, 2048)),
        ],
        "4Kx4K": [
            ("Pad", 4096, (4096, 4096)),
            ("SplitBlock", 2, 1, (4096, 4096)),
            ("OnChipSolve", 64, "coalesced", 4, (16384, 1024)),
            ("Unsplit", 2, (4096, 4096)),
            ("Unpad", (4096, 4096)),
        ],
        "1x2M": [
            ("Pad", 2097152, (1, 2097152)),
            ("SplitCoop", 5, (1, 2097152)),
            ("SplitBlock", 6, 32, (32, 65536)),
            ("OnChipSolve", 64, "coalesced", 2048, (2048, 1024)),
            ("Unsplit", 6, (1, 2097152)),
            ("Unsplit", 5, (1, 2097152)),
            ("Unpad", (1, 2097152)),
        ],
    }

    @pytest.mark.parametrize("name", sorted(GOLDEN))
    def test_lowered_program_is_pinned(self, name):
        device = make_device("gtx470")
        workload = next(w for w in paper_workloads() if w.name == name)
        m, n = workload.shape
        switch = _static_switch(device, m, n, 8)
        program = plan_solve(device, m, n, 8, switch).lower(device, 8)
        got = [
            (type(s.op).__name__,)
            + tuple(
                getattr(s.op, f) for f in s.op.__dataclass_fields__
            )
            + (s.shape,)
            for s in program.steps
        ]
        assert got == self.GOLDEN[name]

    def test_steps_chain_linearly(self):
        device = make_device("gtx470")
        switch = _static_switch(device, 1, 1 << 21, 8)
        program = plan_solve(device, 1, 1 << 21, 8, switch).lower(device, 8)
        assert program.steps[0].deps == ()
        for i, step in enumerate(program.steps[1:], start=1):
            assert step.deps == (i - 1,)


class TestExecutePriceAgreement:
    """The same program, interpreted with and without data, times equal."""

    @pytest.mark.parametrize(
        "m,n",
        [(4, 1000), (32, 512), (1, 4097), (7, 64), (2048, 2048)],
    )
    def test_totals_and_stages_bit_identical(self, m, n):
        device = make_device("gtx470")
        switch = _static_switch(device, m, n, 8)
        batch = generators.random_dominant(m, min(n, 4096), rng=3)
        # Price at the batch's real shape so both sides see one program.
        plan, priced = simulate_plan(
            device, m, batch.system_size, 8, switch
        )
        executed = MultiStageSolver(device, switch).execute_plan(
            batch, plan, switch
        )
        assert executed.report.total_ms == priced.total_ms
        assert executed.report.stage_ms() == priced.stage_ms()

    def test_paper_workloads_price_data_free(self):
        """The nominal figure shapes price without materialising data."""
        device = make_device("gtx470")
        for workload in paper_workloads():
            m, n = workload.shape
            switch = _static_switch(device, m, n, 8)
            plan, report = simulate_plan(device, m, n, 8, switch)
            run = Engine.for_device(device).price(plan.lower(device, 8))
            assert run.report.total_ms == report.total_ms
            assert report.total_ms > 0


class TestOldSequenceParity:
    """Engine execution matches the pre-IR kernel sequence bit-for-bit."""

    @pytest.mark.parametrize("dtype", [np.float32, np.float64])
    @pytest.mark.parametrize("m,n", [(4, 1000), (1, 4097), (16, 2048), (5, 100)])
    def test_solution_and_timing_match_reference(self, dtype, m, n):
        device = make_device("gtx470")
        batch = generators.random_dominant(m, n, rng=17, dtype=dtype)
        dsize = dtype_size(batch.dtype)
        switch = _static_switch(device, m, n, dsize)
        plan = plan_solve(device, m, n, dsize, switch)

        ref_x, ref_report = _reference_solve(device, batch, plan)
        result = MultiStageSolver(device, switch).execute_plan(
            batch, plan, switch
        )
        assert np.array_equal(result.x, ref_x)
        assert result.report.total_ms == ref_report.total_ms
        assert result.report.stage_ms() == ref_report.stage_ms()

    @settings(max_examples=20, deadline=None)
    @given(
        m=st.integers(min_value=1, max_value=9),
        n=st.integers(min_value=8, max_value=3000),
        dsize=st.sampled_from([4, 8]),
    )
    def test_property_parity(self, m, n, dsize):
        device = make_device("gtx470")
        dtype = np.float32 if dsize == 4 else np.float64
        batch = generators.random_dominant(m, n, rng=m * 10007 + n, dtype=dtype)
        switch = _static_switch(device, m, n, dsize)
        plan = plan_solve(device, m, n, dsize, switch)
        ref_x, ref_report = _reference_solve(device, batch, plan)
        result = MultiStageSolver(device, switch).execute_plan(
            batch, plan, switch
        )
        assert np.array_equal(result.x, ref_x)
        assert result.report.total_ms == ref_report.total_ms


class TestDistEnginePricing:
    """The dist solver's report is the engine's pricing of its program."""

    def test_execute_report_equals_priced_report(self):
        solver = DistributedSolver(3, "static", mode="rows")
        batch = generators.random_dominant(2, 4096, rng=5)
        result = solver.solve(batch)
        program = solver.lower(result.plan, 8)
        run = Engine.for_group(solver.group).price(program)
        assert result.report.total_ms == run.report.total_ms

    def test_batch_mode_gather_orders_by_completion(self):
        solver = DistributedSolver(3, "static", mode="batch")
        plan, report = solver.price(1000, 256, 8)
        program = solver.lower(plan, 8)
        sends = [
            s for s in program.steps
            if isinstance(s.op, Transfer) and s.stage == "send_solution"
        ]
        assert len(sends) == 2
        # All gathers funnel through the host's ingress link.
        assert all(s.resource == "dev0:ingress" for s in sends)


class TestPasses:
    def test_zero_split_plans_have_no_split_steps(self):
        device = make_device("gtx470")
        switch = _static_switch(device, 1024, 1024, 8)
        program = plan_solve(device, 1024, 1024, 8, switch).lower(device, 8)
        ops = {type(s.op).__name__ for s in program.steps}
        assert "SplitCoop" not in ops
        assert "SplitBlock" not in ops
        assert "Unsplit" not in ops

    def test_validation_rejects_transfer_in_solve(self):
        program = Program(
            kind="solve",
            label="bad",
            device_names=("GeForce GTX 470",),
            dtype_size=8,
            num_systems=1,
            system_size=64,
            steps=(
                Step(op=Transfer(2.0, 0, 0), engine="xfer", shape=(1, 64)),
            ),
        )
        with pytest.raises(PlanError):
            run_default_passes(program)

    def test_validation_rejects_out_of_range_device(self):
        program = Program(
            kind="dist",
            label="bad",
            device_names=("a", "b"),
            dtype_size=8,
            num_systems=1,
            system_size=64,
            steps=(Step(op=Transfer(2.0, 0, 5), engine="xfer", shape=(1, 64)),),
        )
        with pytest.raises(PlanError):
            run_default_passes(program)


@pytest.mark.fusion
class TestFuseBatched:
    """The fusion pass: staged chains become interleaved batch sweeps."""

    # Fused forms of two pinned workloads (statically tuned, f64).
    GOLDEN = {
        # On-chip only: Pad / Interleave / BatchedSolve / Interleave / Unpad.
        "1Kx1K": [
            ("Pad", 1024, ""),
            ("Interleave", "in", "interleave"),
            ("BatchedSolve", 64, "coalesced", 0, 0, "fused_sweep"),
            ("Interleave", "out", "deinterleave"),
            ("Unpad", ""),
        ],
        # Split-heavy: the block splits fold into the BatchedSolve op.
        "4Kx4K": [
            ("Pad", 4096, ""),
            ("Interleave", "in", "interleave"),
            ("BatchedSolve", 64, "coalesced", 0, 2, "fused_sweep"),
            ("Interleave", "out", "deinterleave"),
            ("Unpad", ""),
        ],
    }

    def _lower(self, name, fuse):
        device = make_device("gtx470")
        workload = next(w for w in paper_workloads() if w.name == name)
        m, n = workload.shape
        switch = _static_switch(device, m, n, 8)
        return plan_solve(device, m, n, 8, switch).lower(
            device, 8, fuse=fuse
        )

    @pytest.mark.parametrize("name", sorted(GOLDEN))
    def test_fused_program_is_pinned(self, name):
        program = self._lower(name, fuse=True)
        got = []
        for s in program.steps:
            op = s.op
            if isinstance(op, Pad):
                got.append(("Pad", op.padded_size, s.stage))
            elif isinstance(op, Interleave):
                got.append(("Interleave", op.direction, s.stage))
            elif isinstance(op, BatchedSolve):
                got.append(
                    (
                        "BatchedSolve",
                        op.thomas_switch,
                        op.variant,
                        op.stage1_steps,
                        op.stage2_steps,
                        s.stage,
                    )
                )
            elif isinstance(op, Unpad):
                got.append(("Unpad", s.stage))
        assert got == self.GOLDEN[name]
        assert program.steps[0].deps == ()
        for i, step in enumerate(program.steps[1:], start=1):
            assert step.deps == (i - 1,)

    def test_fusion_is_idempotent(self):
        fused = self._lower("4Kx4K", fuse=True)
        # A changed-nothing pass returns the same object.
        assert fuse_batched(fused) is fused

    def test_unfusable_programs_pass_through_unchanged(self):
        solver = DistributedSolver(2, "static", mode="rows")
        plan, _ = solver.price(1, 1 << 16, 8)
        dist_program = solver.lower(plan, 8)
        assert fuse_batched(dist_program) is dist_program

    def test_fused_signature_is_count_independent(self):
        device = make_device("gtx470")
        switch = _static_switch(device, 8, 2048, 8)
        plan = plan_solve(device, 8, 2048, 8, switch)
        a = plan.lower(device, 8, fuse=True)
        b = plan.with_num_systems(123).lower(device, 8, fuse=True)
        assert a.signature == b.signature
        # And the fused signature differs from the unfused one.
        assert a.signature != plan.lower(device, 8).signature

    def test_validation_rejects_batched_ops_in_dist_programs(self):
        program = Program(
            kind="dist",
            label="bad",
            device_names=("a",),
            dtype_size=8,
            num_systems=2,
            system_size=64,
            steps=(
                Step(
                    op=Interleave("in"),
                    engine="kernel",
                    shape=(2, 64),
                    stage="interleave",
                ),
            ),
        )
        with pytest.raises(PlanError):
            run_default_passes(program)

    @settings(max_examples=15, deadline=None)
    @given(
        m=st.integers(min_value=1, max_value=9),
        n=st.integers(min_value=8, max_value=3000),
    )
    def test_property_fused_execute_matches_unfused(self, m, n):
        device = make_device("gtx470")
        dsize = 8
        batch = generators.random_dominant(m, n, rng=m * 104729 + n)
        switch = _static_switch(device, m, n, dsize)
        plan = plan_solve(device, m, n, dsize, switch)
        engine = Engine.for_device(device)
        unfused = engine.execute(plan.lower(device, dsize), batch)
        fused = engine.execute(plan.lower(device, dsize, fuse=True), batch)
        assert np.array_equal(unfused.x, fused.x)

    def test_fused_price_equals_execute(self):
        device = make_device("gtx280")
        batch = generators.random_dominant(16, 2048, rng=8)
        switch = _static_switch(device, 16, 2048, 8)
        program = plan_solve(device, 16, 2048, 8, switch).lower(
            device, 8, fuse=True
        )
        engine = Engine.for_device(device)
        assert (
            engine.execute(program, batch).report.total_ms
            == engine.price(program).report.total_ms
        )


@pytest.mark.fusion
class TestConcatSolvePrograms:
    def _single(self, n=64, device=None):
        device = device or make_device("gtx470")
        switch = _static_switch(device, 1, n, 8)
        return lower_solve_plan(
            plan_solve(device, 1, n, 8, switch), device, 8
        )

    def test_concat_sums_systems_and_rebases_deps(self):
        single = self._single()
        merged = concat_solve_programs([single] * 3)
        assert merged.num_systems == 3
        assert len(merged.steps) == 3 * len(single.steps)
        for i, step in enumerate(merged.steps):
            base = (i // len(single.steps)) * len(single.steps)
            expect = tuple(
                base + d for d in single.steps[i % len(single.steps)].deps
            )
            assert step.deps == expect

    def test_fused_concat_collapses_to_one_sweep(self):
        merged = concat_solve_programs([self._single()] * 50, fuse=True)
        assert merged.num_systems == 50
        ops = [type(s.op).__name__ for s in merged.steps]
        assert ops == [
            "Pad", "Interleave", "BatchedSolve", "Interleave", "Unpad",
        ]

    def test_concat_rejects_mismatches(self):
        a = self._single(64)
        b = self._single(128)
        with pytest.raises(PlanError):
            concat_solve_programs([a, b])
        with pytest.raises(PlanError):
            concat_solve_programs([])

    def test_concat_executes_like_independent_solves(self):
        device = make_device("gtx470")
        batches = [
            generators.random_dominant(1, 64, rng=i) for i in range(4)
        ]
        single = self._single()
        engine = Engine.for_device(device)
        expected = np.vstack(
            [engine.execute(single, b).x for b in batches]
        )
        from repro.systems.tridiagonal import TridiagonalBatch

        merged_batch = TridiagonalBatch(
            np.vstack([b.a for b in batches]),
            np.vstack([b.b for b in batches]),
            np.vstack([b.c for b in batches]),
            np.vstack([b.d for b in batches]),
        )
        fused = concat_solve_programs([single] * 4, fuse=True)
        got = engine.execute(fused, merged_batch)
        np.testing.assert_array_equal(got.x, expected)


class TestPassChangeReporting:
    """Passes report no-change by returning the same Program object,
    which lets the pipeline skip the canonicalise re-walk."""

    def _program(self):
        device = make_device("gtx470")
        switch = _static_switch(device, 4, 4096, 8)
        return plan_solve(device, 4, 4096, 8, switch).lower(device, 8)

    def test_canonicalize_is_identity_on_canonical_programs(self):
        from repro.ir.passes import canonicalize, eliminate_dead_steps

        program = self._program()  # already through the default pipeline
        assert canonicalize(program) is program
        assert eliminate_dead_steps(program) is program

    def test_fuse_batched_identity_when_nothing_to_fuse(self):
        fused = run_default_passes(self._program(), fuse=True)
        assert fuse_batched(fused) is fused

    def test_run_default_passes_idempotent(self):
        program = self._program()
        assert run_default_passes(program) == program
        fused = run_default_passes(program, fuse=True)
        assert run_default_passes(fused, fuse=True) == fused


class TestSignatures:
    def test_signature_is_count_independent(self):
        device = make_device("gtx470")
        switch = _static_switch(device, 8, 2048, 8)
        plan = plan_solve(device, 8, 2048, 8, switch)
        widened = plan.with_num_systems(123)
        assert (
            plan.lower(device, 8).signature
            == widened.lower(device, 8).signature
        )

    def test_signature_distinguishes_system_size(self):
        device = make_device("gtx470")
        switch = _static_switch(device, 8, 2048, 8)
        a = plan_solve(device, 8, 1024, 8, switch).lower(device, 8)
        b = plan_solve(device, 8, 2048, 8, switch).lower(device, 8)
        assert a.signature != b.signature

    def test_signature_text_is_stable(self):
        sig = (("OnChipSolve", 64, "coalesced", 1), 0, "compute", 6.0)
        text = signature_text(sig)
        assert text == "(('OnChipSolve',64,'coalesced',1),0,'compute',6)"

    def test_lower_solve_plan_matches_method(self):
        device = make_device("gtx470")
        switch = _static_switch(device, 4, 4096, 8)
        plan = plan_solve(device, 4, 4096, 8, switch)
        assert lower_solve_plan(plan, device, 8) == plan.lower(device, 8)


class TestTuningCacheStructuredKeys:
    def test_tuple_workload_class_roundtrips(self):
        cache = TuningCache()
        sp = SwitchPoints(thomas_switch=128, source="dynamic")
        klass = ("workload", 8, (("OnChipSolve", 64, "coalesced", 1), 1024))
        cache.put("dev", 8, sp, workload_class=klass)
        assert cache.get("dev", 8, workload_class=klass) == sp
        assert cache.get("dev", 8, workload_class="other") is None

    def test_tuple_keys_survive_persistence(self, tmp_path):
        path = tmp_path / "tuning.json"
        sp = SwitchPoints(thomas_switch=64, source="dynamic")
        klass = ("workload", 3, ("Pad", 2048))
        TuningCache(path).put("gtx470", 4, sp, workload_class=klass)
        reloaded = TuningCache(path)
        assert reloaded.get("gtx470", 4, workload_class=klass) == sp

    def test_self_tuner_program_classes_share_runs(self):
        """Shapes that lower to the same program share one tuning run."""
        from repro.core import SelfTuner

        tuner = SelfTuner()
        device = make_device("gtx470")
        first = tuner.switch_points(device, 1024, 1024, 4)
        second = tuner.switch_points(device, 1024, 1000, 4)  # pads to 1024
        assert first == second
        assert len(tuner.cache) == 1


class TestEngineGuards:
    def test_execute_rejects_dist_programs(self):
        solver = DistributedSolver(2, "static", mode="rows")
        plan, _ = solver.price(1, 1 << 16, 8)
        program = solver.lower(plan, 8)
        batch = generators.random_dominant(1, 64, rng=1)
        with pytest.raises(PlanError):
            Engine.for_group(solver.group).execute(program, batch)

    def test_bare_name_engine_cannot_price_kernels(self):
        device = make_device("gtx470")
        switch = _static_switch(device, 4, 1024, 8)
        program = plan_solve(device, 4, 1024, 8, switch).lower(device, 8)
        with pytest.raises(PlanError):
            Engine(("not-a-device",)).price(program)

    def test_padded_size_mismatch_reported_at_pad_step(self):
        device = make_device("gtx470")
        switch = _static_switch(device, 4, 1024, 8)
        plan = plan_solve(device, 4, 1024, 8, switch)
        batch = generators.random_dominant(4, 2048, rng=2)
        with pytest.raises(PlanError, match="padded size"):
            MultiStageSolver(device, switch).execute_plan(
                batch, plan, switch
            )


class TestSessionSnapshot:
    """The report() satellite: observing a session must not close it."""

    def test_snapshot_does_not_close(self):
        device = make_device("gtx470")
        switch = _static_switch(device, 4, 1024, 8)
        program = plan_solve(device, 4, 1024, 8, switch).lower(device, 8)
        session = device.session()
        ctx = KernelContext(session)
        from repro.kernels import handlers

        for step in program.steps:
            for cost in handlers.price_costs(step, ctx, 8):
                session.submit(cost, stage=step.stage)
            mid = session.snapshot()  # must not close the session
            assert mid.total_ms == session.elapsed_ms
        final = session.report()
        assert final.total_ms == session.elapsed_ms

    def test_trace_spans_partition_the_report(self):
        device = make_device("gtx470")
        switch = _static_switch(device, 1, 1 << 18, 8)
        plan, _ = simulate_plan(device, 1, 1 << 18, 8, switch)
        run = Engine.for_device(device).price(plan.lower(device, 8))
        assert run.trace[0].start_ms == 0.0
        for prev, cur in zip(run.trace, run.trace[1:]):
            assert cur.start_ms == prev.end_ms
        assert run.trace[-1].end_ms == run.report.total_ms


def test_ir_reexports_cover_opcodes():
    # The package namespace is the documented API surface.
    for symbol in (Pad, Unpad, SplitCoop, SplitBlock, OnChipSolve, Unsplit):
        assert symbol.__module__ == "repro.ir.instructions"
