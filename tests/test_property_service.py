"""Property-based round-trip tests for the batched solve service.

The service's core promise: however requests are mixed — dtypes,
non-power-of-two sizes, diagonal dominance from comfortable to
near-singular — every answer is **bit-identical** to what a standalone
:class:`MultiStageSolver` (with the same switch points) produces for
that request alone. Grouping, merging, and worker concurrency must be
invisible in the numbers.
"""

import threading

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import MultiStageSolver, SwitchPoints
from repro.service import BatchSolveService
from repro.systems import generators
from repro.util.errors import ServiceOverloadedError

COMMON = dict(max_examples=20, deadline=None)

DEVICE = "gtx470"
SWITCH = SwitchPoints(
    stage1_target_systems=16, stage3_system_size=256, thomas_switch=64
)


@st.composite
def request_batches(draw):
    """One service request: random shape, dtype, and conditioning."""
    n = draw(st.integers(min_value=2, max_value=300))
    m = draw(st.integers(min_value=1, max_value=6))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    dtype = draw(st.sampled_from([np.float32, np.float64]))
    kind = draw(st.sampled_from(["dominant", "barely-dominant", "near-singular"]))
    if kind == "near-singular":
        return generators.ill_conditioned(m, n, epsilon=1e-6, rng=seed, dtype=dtype)
    dominance = 1.01 if kind == "barely-dominant" else draw(
        st.floats(min_value=1.2, max_value=4.0)
    )
    return generators.random_dominant(m, n, dominance=dominance, rng=seed, dtype=dtype)


def _direct(batch):
    return MultiStageSolver(DEVICE, SWITCH).solve(batch)


@settings(**COMMON)
@given(batch=request_batches())
def test_single_request_bit_identical(batch):
    with BatchSolveService(DEVICE, SWITCH) as svc:
        (res,) = svc.solve_many([batch])
    direct = _direct(batch)
    assert res.x.dtype == direct.x.dtype
    np.testing.assert_array_equal(direct.x, res.x)


@settings(**COMMON)
@given(batches=st.lists(request_batches(), min_size=2, max_size=8))
def test_mixed_batch_round_trip_bit_identical(batches):
    """Random request mixes survive grouping + concurrency untouched."""
    with BatchSolveService(DEVICE, SWITCH, max_workers=4) as svc:
        results = svc.solve_many(batches)
        snap = svc.stats.snapshot()
    assert snap["requests_completed"] == len(batches)
    for batch, res in zip(batches, results):
        np.testing.assert_array_equal(_direct(batch).x, res.x)


@settings(**COMMON)
@given(
    n=st.integers(min_value=2, max_value=600),
    m=st.integers(min_value=1, max_value=4),
    copies=st.integers(min_value=2, max_value=6),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
def test_identical_requests_get_identical_answers(n, m, copies, seed):
    """The same system submitted many times in one mix answers identically
    — merged execution must not couple neighbouring systems."""
    batch = generators.random_dominant(m, n, rng=seed)
    others = [
        generators.random_dominant(m, n, rng=seed + 1 + i) for i in range(copies)
    ]
    mix = [batch] + others + [batch]
    with BatchSolveService(DEVICE, SWITCH) as svc:
        results = svc.solve_many(mix)
    np.testing.assert_array_equal(results[0].x, results[-1].x)


@settings(**COMMON)
@given(
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    count=st.integers(min_value=3, max_value=12),
)
def test_mixed_requests_generator_round_trip(seed, count):
    """The serving-workload generator itself round-trips bit-identically."""
    requests = generators.mixed_requests(
        count, rng=seed, sizes=(32, 48, 64, 100), max_systems=4
    )
    with BatchSolveService(DEVICE, SWITCH, max_workers=2) as svc:
        results = svc.solve_many(requests)
    for batch, res in zip(requests, results):
        np.testing.assert_array_equal(_direct(batch).x, res.x)


@settings(max_examples=10, deadline=None)
@given(
    batches=st.lists(request_batches(), min_size=2, max_size=6),
    cap=st.integers(min_value=1, max_value=8),
)
def test_group_cap_does_not_change_answers(batches, cap):
    """max_group_systems only re-partitions work; answers are unchanged."""
    with BatchSolveService(DEVICE, SWITCH, max_group_systems=cap) as svc:
        capped = svc.solve_many(batches)
    with BatchSolveService(DEVICE, SWITCH) as svc:
        uncapped = svc.solve_many(batches)
    for lhs, rhs in zip(capped, uncapped):
        np.testing.assert_array_equal(lhs.x, rhs.x)


def test_concurrent_overload_rejects_cleanly_without_deadlock():
    """Concurrent producers racing a tiny reject-mode queue: every
    submission either lands a future that later resolves bit-correctly
    or raises :class:`ServiceOverloadedError` immediately — none hang,
    none are lost, and the drain completes."""
    producers, per_producer, max_pending = 8, 6, 4
    lock = threading.Lock()
    accepted, rejected = [], [0]

    with BatchSolveService(
        DEVICE, SWITCH, max_workers=2, max_pending=max_pending, overflow="reject"
    ) as svc:

        def produce(worker):
            for i in range(per_producer):
                batch = generators.random_dominant(1, 64, rng=worker * 100 + i)
                try:
                    fut = svc.submit(batch)
                except ServiceOverloadedError:
                    with lock:
                        rejected[0] += 1
                else:
                    with lock:
                        accepted.append((batch, fut))

        threads = [
            threading.Thread(target=produce, args=(w,)) for w in range(producers)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
        assert not any(t.is_alive() for t in threads), "a producer deadlocked"

        # Nothing drained while producing, so the queue's capacity is
        # exactly what got through; the rest were shed, not dropped.
        assert len(accepted) == max_pending
        assert len(accepted) + rejected[0] == producers * per_producer
        assert svc.stats.snapshot()["requests_rejected"] == rejected[0]

        svc.flush()
        for batch, fut in accepted:
            res = fut.result(timeout=30)
            np.testing.assert_array_equal(_direct(batch).x, res.x)


@pytest.mark.parametrize("dtype", [np.float32, np.float64])
def test_dtype_preserved_end_to_end(dtype):
    batch = generators.random_dominant(3, 100, rng=5, dtype=dtype)
    with BatchSolveService(DEVICE, SWITCH) as svc:
        (res,) = svc.solve_many([batch])
    assert res.x.dtype == np.dtype(dtype)
