"""The numerical-safety governor: estimate, decide, verify, escalate.

Covers the truncated-SPIKE approximate mode and the machinery that makes
it safe to ship: the cheap dominance estimate gating it, the
escalation ladder (accept -> refine -> re-solve -> typed breakdown)
behind it, boundary validation in front of the service, and the
adversarial-numerics chaos phase auditing the whole stack. The pinned
goldens freeze the approx/exact switch point so the admission policy
cannot drift silently.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.spike import spike_solve, truncated_spike_solve
from repro.core.solver import solve
from repro.dist.solver import DistributedSolver
from repro.numerics import (
    SAFETY_MARGIN,
    DominanceEstimate,
    Governor,
    GovernorDecision,
)
from repro.service import BatchSolveService
from repro.systems import dominance_ratio, generators
from repro.systems.tridiagonal import TridiagonalBatch
from repro.util.errors import (
    InvalidSystemError,
    NumericalBreakdownError,
    ReproError,
)
from repro.util.validation import check_system_batch

pytestmark = pytest.mark.numerics


def _ratio_four_batch(num_systems=2, system_size=64):
    """Interior dominance ratio exactly 4: |b| = 8, |a| + |c| = 2."""
    m, n = num_systems, system_size
    a = np.full((m, n), -1.0)
    c = np.full((m, n), -1.0)
    a[:, 0] = 0
    c[:, -1] = 0
    b = np.full((m, n), 8.0)
    d = np.arange(m * n, dtype=np.float64).reshape(m, n) / (m * n)
    return TridiagonalBatch(a, b, c, d)


# ---------------------------------------------------------------------------
# dominance estimation
# ---------------------------------------------------------------------------


class TestDominanceEstimate:
    def test_dominant_generator_meets_its_advertised_ratio(self):
        batch = generators.random_dominant(4, 256, dominance=4.0, rng=0)
        est = DominanceEstimate.measure(batch)
        assert est.min_ratio >= 4.0
        assert est.num_systems == 4 and est.system_size == 256
        assert est.ratios.shape == (4,)

    def test_poisson_sits_exactly_at_the_dominance_boundary(self):
        est = DominanceEstimate.measure(generators.poisson_1d(2, 128))
        assert est.min_ratio == pytest.approx(1.0)
        assert est.truncation_bound(64) == 1.0
        assert not est.safe_for(1e-6, 64)

    def test_row_scaling_preserves_the_ratio(self):
        base = generators.random_dominant(3, 128, rng=5)
        scaled = generators.huge_dynamic_range(3, 128, rng=5)
        # Same seed consumes the rng identically for the base batch,
        # so the two ratios agree row-for-row despite ~12 decades of
        # magnitude spread in the scaled one.
        np.testing.assert_allclose(
            dominance_ratio(base), dominance_ratio(scaled), rtol=1e-12
        )

    def test_pinned_truncation_bound_golden(self):
        # The frozen arithmetic of the admission policy: dominance
        # ratio 4 across 9-row chunks decays the dropped couplings by
        # (1/4)^(9-1) exactly.
        est = DominanceEstimate.measure(_ratio_four_batch())
        assert est.min_ratio == pytest.approx(4.0)
        assert est.truncation_bound(9) == pytest.approx(
            1.52587890625e-05, rel=0, abs=0
        )

    def test_pinned_approx_exact_switch_point(self):
        # bound == SAFETY_MARGIN * tolerance is the admission edge:
        # exactly at it the approx path is allowed, one notch tighter
        # and the governor prices exact instead.
        est = DominanceEstimate.measure(_ratio_four_batch())
        edge = est.truncation_bound(9) / SAFETY_MARGIN
        assert est.safe_for(edge, 9)
        assert not est.safe_for(edge * (1 - 1e-12), 9)

    def test_identity_batch_has_infinite_ratio_and_zero_bound(self):
        est = DominanceEstimate.measure(generators.identity(2, 32))
        assert est.min_ratio == np.inf
        assert est.truncation_bound(16) == 0.0
        assert est.safe_for(1e-300, 16)


# ---------------------------------------------------------------------------
# truncated SPIKE
# ---------------------------------------------------------------------------


class TestTruncatedSpike:
    def test_matches_exact_spike_on_dominant_systems(self):
        batch = generators.random_dominant(4, 1024, rng=1)
        exact = spike_solve(batch, partitions=8)
        approx = truncated_spike_solve(batch, partitions=8)
        np.testing.assert_allclose(approx, exact, atol=1e-12)
        assert batch.residual(approx).max() < 1e-12

    def test_honestly_fails_without_dominance(self):
        # Ratio-1 systems decay nothing: the dropped couplings bite and
        # the residual must expose it (this is what the ladder catches).
        batch = generators.poisson_1d(2, 512)
        approx = truncated_spike_solve(batch, partitions=8)
        assert batch.residual(approx).max() > 1e-2


# ---------------------------------------------------------------------------
# governor: decide + enforce
# ---------------------------------------------------------------------------


class TestGovernor:
    def test_decide_admits_approx_for_dominant_work(self):
        decision = Governor().decide(
            generators.random_dominant(2, 256, rng=0), 1e-8, 128
        )
        assert isinstance(decision, GovernorDecision)
        assert decision.approx
        assert decision.bound <= SAFETY_MARGIN * 1e-8
        assert "approx" in decision.describe()

    def test_decide_refuses_approx_without_dominance(self):
        decision = Governor().decide(generators.poisson_1d(2, 256), 1e-8, 128)
        assert not decision.approx
        assert "no dominance guarantee" in decision.reason

    def test_enforce_accepts_a_good_solution_unchanged(self):
        batch = generators.identity(2, 16)
        x = batch.d.copy()
        outcome = Governor().enforce(batch, x, 1e-12)
        assert outcome.rung == "accepted"
        assert outcome.x is x
        assert outcome.attempts == ("exact",)

    def test_enforce_walks_refine_then_resolve_in_order(self):
        batch = generators.identity(1, 8)
        exact = batch.d.copy()
        calls = []

        def bad_refine(b, x):
            calls.append("refine")
            return x  # no improvement

        def good_resolve(b):
            calls.append("resolve")
            return exact

        outcome = Governor().enforce(
            batch,
            np.zeros_like(exact),
            1e-12,
            refine=bad_refine,
            resolve=good_resolve,
            path="approx",
        )
        assert outcome.rung == "resolved"
        assert calls == ["refine", "resolve"]
        assert outcome.attempts == ("approx", "refine", "resolve")

    def test_enforce_breakdown_carries_diagnostics(self):
        batch = generators.poisson_1d(3, 32)
        with pytest.raises(NumericalBreakdownError) as excinfo:
            Governor().enforce(
                batch, np.zeros((3, 32)), 1e-12, path="approx"
            )
        err = excinfo.value
        assert isinstance(err, ReproError)
        assert 0 <= err.system_index < 3
        assert err.residual > err.tolerance == 1e-12
        assert err.attempts == ("approx",)
        assert err.dominance_ratio == pytest.approx(1.0)

    def test_outcomes_and_decisions_land_in_metrics(self):
        from repro.obs import MetricsRegistry

        registry = MetricsRegistry()
        gov = Governor(metrics=registry)
        batch = generators.random_dominant(1, 64, rng=2)
        gov.decide(batch, 1e-8, 32)
        gov.enforce(batch, solve(batch).x, 1e-8)
        assert registry.get("repro_numerics_decisions_total").total() == 1
        assert registry.get("repro_numerics_outcomes_total").value(
            path="exact", rung="accepted"
        ) == 1
        assert registry.get("repro_numerics_dominance_ratio").count() == 1
        assert registry.get("repro_numerics_residual_ratio").count() == 1


# ---------------------------------------------------------------------------
# governed entry points
# ---------------------------------------------------------------------------


class TestGovernedSolves:
    def test_single_device_governed_solve_verifies(self):
        batch = generators.random_dominant(2, 512, rng=3)
        result = solve(batch, tolerance=1e-10)
        assert batch.residual(result.x).max() <= 1e-10

    def test_single_device_breakdown_is_typed(self):
        batch = generators.ill_conditioned(1, 64, epsilon=1e-13, rng=0)
        with pytest.raises(NumericalBreakdownError):
            solve(batch, tolerance=1e-13)

    def test_dist_governed_approx_meets_tolerance(self):
        solver = DistributedSolver(8, mode="approx")
        batch = generators.random_dominant(4, 1 << 14, rng=4)
        result = solver.solve(batch, tolerance=1e-8)
        assert result.plan.mode == "approx"
        assert batch.residual(result.x).max() <= 1e-8

    def test_dist_approx_escalates_to_exact_on_hostile_data(self):
        # Forced-approx on boundary-dominance systems: the truncated
        # reduced solve misses tolerance, the ladder re-solves on the
        # exact path, and the caller still gets a verified answer.
        solver = DistributedSolver(4, mode="approx")
        batch = generators.poisson_1d(2, 1 << 12)
        result = solver.solve(batch, tolerance=1e-8)
        assert batch.residual(result.x).max() <= 1e-8

    def test_auto_mode_only_prices_approx_when_governed(self):
        solver = DistributedSolver(8)
        m, n = 4, 1 << 16
        ungoverned, _ = solver.price(m, n, 8)
        governed, _ = solver.price(m, n, 8, tolerance=1e-6)
        assert ungoverned.mode != "approx"
        assert governed.mode == "approx"


@pytest.mark.dist
class TestApproxPerformance:
    def test_approx_is_faster_than_exact_rows_at_scale(self):
        """The acceptance bar: a measurable priced step change from
        skipping the sequential reduced-system exchange, at >= 8
        devices, growing with device count."""
        m, n = 4, 1 << 16
        speedups = []
        for devices in (8, 16, 32):
            rows = DistributedSolver(devices, mode="rows")
            approx = DistributedSolver(devices, mode="approx")
            _, rows_report = rows.price(m, n, 8)
            _, approx_report = approx.price(m, n, 8)
            speedups.append(rows_report.total_ms / approx_report.total_ms)
        assert speedups[0] > 1.0
        assert speedups == sorted(speedups)
        assert speedups[-1] > 2.0

    def test_priced_approx_matches_executed_makespan(self):
        solver = DistributedSolver(8, mode="approx")
        batch = generators.random_dominant(4, 1 << 13, rng=6)
        plan, priced = solver.price(4, 1 << 13, 8)
        result = solver.execute_plan(batch, plan)
        assert result.report.total_ms == pytest.approx(priced.total_ms)


# ---------------------------------------------------------------------------
# boundary validation
# ---------------------------------------------------------------------------


class TestBoundaryValidation:
    def test_clean_batch_passes_through(self):
        batch = generators.random_dominant(2, 64, rng=0)
        assert check_system_batch(batch) is batch

    @pytest.mark.parametrize("poison", ["nan", "inf"])
    def test_nonfinite_coefficients_rejected_with_index(self, poison):
        gen = (
            generators.nan_poisoned
            if poison == "nan"
            else generators.inf_poisoned
        )
        batch = gen(3, 32, rng=1)
        with pytest.raises(InvalidSystemError) as excinfo:
            check_system_batch(batch, context="test")
        bad = excinfo.value.system_index
        assert not np.isfinite(batch.b[bad]).all()

    def test_zero_diagonal_rejected(self):
        with pytest.raises(InvalidSystemError, match="zero main-diagonal"):
            check_system_batch(generators.singular(2, 64))

    def test_service_rejects_invalid_and_counts_it(self):
        with BatchSolveService(auto_flush=None) as svc:
            with pytest.raises(InvalidSystemError):
                svc.submit(generators.nan_poisoned(1, 64, rng=0))
            with pytest.raises(InvalidSystemError):
                svc.submit(generators.singular(1, 64))
            assert (
                svc.metrics.get("repro_service_invalid_total").total() == 2
            )


# ---------------------------------------------------------------------------
# governed service
# ---------------------------------------------------------------------------


class TestGovernedService:
    def test_group_merge_honours_strictest_tolerance(self):
        from repro.service.batcher import SolveGroup

        with BatchSolveService(auto_flush=None) as svc:
            loose = svc.submit(
                generators.random_dominant(1, 128, rng=0), tolerance=1e-4
            )
            strict = svc.submit(
                generators.random_dominant(1, 128, rng=1), tolerance=1e-12
            )
            ungoverned = svc.submit(generators.random_dominant(1, 128, rng=2))
            groups = [loose, strict, ungoverned]
            svc.flush()
            for fut in groups:
                fut.result(timeout=30)
        group = SolveGroup(
            key=None,
            requests=[
                type("R", (), {"tolerance": t})()
                for t in (1e-4, 1e-12, None)
            ],
        )
        assert group.strictest_tolerance() == 1e-12

    def test_governed_group_members_all_verify(self):
        batches = [
            generators.random_dominant(2, 128, rng=i) for i in range(4)
        ]
        with BatchSolveService(auto_flush=None) as svc:
            futures = [
                svc.submit(b, tolerance=1e-10) for b in batches
            ]
            svc.flush()
            for batch, fut in zip(batches, futures):
                res = fut.result(timeout=30)
                assert batch.residual(res.x).max() <= 1e-10
            counter = svc.metrics.get("repro_numerics_outcomes_total")
            assert counter.value(path="service", rung="accepted") >= 1

    def test_bisection_isolates_numerical_breakdown(self):
        good = [generators.random_dominant(1, 64, rng=i) for i in range(3)]
        poison = generators.ill_conditioned(1, 64, epsilon=1e-13, rng=7)
        with BatchSolveService(auto_flush=None) as svc:
            good_futs = [svc.submit(b, tolerance=1e-10) for b in good]
            poison_fut = svc.submit(poison, tolerance=1e-10)
            svc.flush()
            for batch, fut in zip(good, good_futs):
                assert batch.residual(fut.result(timeout=30).x).max() <= 1e-10
            with pytest.raises(NumericalBreakdownError):
                poison_fut.result(timeout=30)
            assert svc.stats.snapshot()["group_bisections"] >= 1

    def test_refinement_recovers_moderately_hostile_groups(self):
        batch = generators.ill_conditioned(2, 256, epsilon=1e-7, rng=4)
        with BatchSolveService(auto_flush=None) as svc:
            fut = svc.submit(batch, tolerance=1e-8)
            svc.flush()
            res = fut.result(timeout=30)
            assert batch.residual(res.x).max() <= 1e-8
            counter = svc.metrics.get("repro_numerics_outcomes_total")
            assert counter.value(path="service", rung="refined") == 1


# ---------------------------------------------------------------------------
# the property: tolerance met or typed error, never neither
# ---------------------------------------------------------------------------


@st.composite
def tridiagonal_batches(draw):
    m = draw(st.integers(min_value=1, max_value=3))
    n = draw(st.integers(min_value=8, max_value=48))
    finite = st.floats(
        min_value=-100.0, max_value=100.0, allow_nan=False
    )
    def grid():
        return np.array(
            draw(
                st.lists(
                    st.lists(finite, min_size=n, max_size=n),
                    min_size=m,
                    max_size=m,
                )
            ),
            dtype=np.float64,
        )

    a, b, c, d = grid(), grid(), grid(), grid()
    a[:, 0] = 0
    c[:, -1] = 0
    return TridiagonalBatch(a, b, c, d)


class TestGovernedContract:
    @pytest.mark.filterwarnings("ignore::RuntimeWarning")
    @settings(max_examples=30, deadline=None)
    @given(tridiagonal_batches())
    def test_tolerance_met_or_typed_error_never_neither(self, batch):
        """The headline guarantee as a property over arbitrary finite
        systems (including singular and wildly non-dominant ones): a
        governed solve either returns a solution whose measured
        relative residual is within tolerance, or raises a typed
        ReproError. A wrong answer delivered silently fails the test;
        so does any untyped exception."""
        tolerance = 1e-8
        try:
            result = solve(batch, tolerance=tolerance)
        except ReproError:
            return  # typed failure: contract satisfied
        assert batch.residual(result.x).max() <= tolerance


# ---------------------------------------------------------------------------
# adversarial chaos
# ---------------------------------------------------------------------------


@pytest.mark.chaos
class TestAdversarialNumericsChaos:
    def test_numerics_phase_is_clean_and_exercises_the_ladder(self):
        from repro.faults.chaos import run_campaign

        report = run_campaign(
            0,
            requests=40,
            serve_requests=0,
            numerics_requests=48,
        )
        nm = report.numerics
        assert report.clean
        assert nm["silent_wrong"] == 0
        assert nm["untyped_errors"] == 0
        assert nm["solved"] + nm["typed_errors"] == nm["requests"]
        # The hostile mix must actually exercise every path: boundary
        # rejections, ladder breakdowns, and at least one refinement.
        assert nm["rejected_invalid"] > 0
        assert nm["breakdowns"] > 0
        assert nm["refined"] > 0


@pytest.mark.chaos
@pytest.mark.slow
def test_nightly_adversarial_numerics_sweep():
    """Three seeds, zero silently-wrong solutions — the nightly bar."""
    from repro.faults.chaos import run_sweep

    reports = run_sweep((0, 1, 2), requests=80, numerics_requests=64)
    assert all(r.clean for r in reports)
    for r in reports:
        assert r.numerics["silent_wrong"] == 0
        assert r.numerics["untyped_errors"] == 0
