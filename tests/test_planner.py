"""Tests for the Figure-1 workflow planner."""

import pytest

from repro.core import SwitchPoints, plan_solve
from repro.gpu import make_device
from repro.util.errors import PlanError

DEV = make_device("gtx470")
SP = SwitchPoints(
    stage1_target_systems=16,
    stage3_system_size=512,
    thomas_switch=64,
    source="manual",
)


class TestPlanShapes:
    def test_fits_onchip_no_splitting(self):
        plan = plan_solve(DEV, 1024, 512, 4, SP)
        assert plan.stage1_steps == 0 and plan.stage2_steps == 0
        assert plan.stage3_system_size == 512
        assert plan.stride == 1

    def test_small_system_uses_own_size(self):
        plan = plan_solve(DEV, 16, 64, 4, SP)
        assert plan.stage3_system_size == 64
        assert plan.thomas_switch == 64

    def test_many_systems_skip_stage1(self):
        plan = plan_solve(DEV, 1024, 4096, 4, SP)
        assert plan.stage1_steps == 0
        assert plan.stage2_steps == 3
        assert plan.stride == 8

    def test_single_large_system_uses_stage1(self):
        plan = plan_solve(DEV, 1, 1 << 21, 4, SP)
        assert plan.stage1_steps == 4  # 1 -> 16 systems
        assert plan.stage2_steps == (21 - 9) - 4
        assert plan.systems_entering_stage2 == 16
        assert plan.systems_entering_stage3 == (1 << 21) // 512

    def test_stage1_stops_at_target(self):
        # 4 systems, target 16 -> 2 cooperative steps.
        plan = plan_solve(DEV, 4, 1 << 16, 4, SP)
        assert plan.stage1_steps == 2

    def test_stage1_capped_by_total_steps(self):
        # Tiny system: cannot split deeper than to size stage3.
        plan = plan_solve(DEV, 1, 1024, 4, SP)
        assert plan.stage1_steps + plan.stage2_steps == 1
        assert plan.stage1_steps == 1  # all available splits go to stage 1

    def test_non_pow2_padded(self):
        plan = plan_solve(DEV, 8, 1000, 4, SP)
        assert plan.system_size == 1024

    def test_stage3_clamped_to_device(self):
        sp = SP.with_(stage3_system_size=4096)
        plan = plan_solve(DEV, 64, 8192, 4, sp)
        assert plan.stage3_system_size == 1024  # 470 on-chip max

    def test_stage3_clamped_on_weak_device(self):
        dev = make_device("8800gtx")
        sp = SP.with_(stage3_system_size=1024)
        plan = plan_solve(dev, 64, 8192, 4, sp)
        assert plan.stage3_system_size == 256

    def test_thomas_clamped_to_stage3(self):
        sp = SP.with_(thomas_switch=1024, stage3_system_size=256)
        plan = plan_solve(DEV, 64, 8192, 4, sp)
        assert plan.thomas_switch == 256

    def test_variant_selection_via_crossover(self):
        sp = SP.with_(variant_crossover_stride=8)
        near = plan_solve(DEV, 1024, 1024, 4, sp)
        assert near.variant == "coalesced"  # stride 2 < 8
        far = plan_solve(DEV, 1024, 16384, 4, sp)
        assert far.stride == 32
        assert far.variant == "strided"

    def test_invalid_workload_rejected(self):
        with pytest.raises(PlanError):
            plan_solve(DEV, 0, 64, 4, SP)
        with pytest.raises(PlanError):
            plan_solve(DEV, 4, 0, 4, SP)

    def test_describe_mentions_stages(self):
        plan = plan_solve(DEV, 1, 1 << 21, 4, SP)
        text = plan.describe()
        assert "stage 1" in text and "stage 2" in text and "stage 3+4" in text


class TestSwitchPoints:
    def test_defaults_valid(self):
        sp = SwitchPoints()
        assert sp.stage3_system_size == 256

    def test_validation(self):
        with pytest.raises(Exception):
            SwitchPoints(stage3_system_size=300)
        with pytest.raises(Exception):
            SwitchPoints(thomas_switch=0)
        with pytest.raises(Exception):
            SwitchPoints(base_variant="weird")

    def test_variant_for_stride_fixed(self):
        sp = SwitchPoints(base_variant="strided")
        assert sp.variant_for_stride(1) == "coalesced"  # contiguous
        assert sp.variant_for_stride(4) == "strided"

    def test_with_copy(self):
        sp = SwitchPoints()
        sp2 = sp.with_(thomas_switch=128)
        assert sp.thomas_switch == 64 and sp2.thomas_switch == 128

    def test_describe(self):
        assert "stage1->2" in SwitchPoints().describe()
