"""Cross-validation grid: every solve path against every other.

The library now has many routes to the same answer — registry
algorithms, the multi-stage solver on three devices, the factorised
path, SPIKE, mixed precision, the CPU baseline, the dispatcher. On one
shared batch they must all agree to tolerance; this is the strongest
single consistency check in the suite.
"""

import numpy as np
import pytest

from repro.algorithms import (
    algorithm_names,
    factorize,
    mixed_precision_solve,
    scipy_banded_solve,
    solve_with,
)
from repro.baselines import MklLikeCpuSolver
from repro.core import HybridDispatcher, MultiStageSolver
from repro.systems import generators

M, N = 12, 512


@pytest.fixture(scope="module")
def batch():
    return generators.random_dominant(M, N, rng=2026)


@pytest.fixture(scope="module")
def oracle(batch):
    return scipy_banded_solve(batch)


def _agrees(x, oracle, tol=1e-8):
    scale = np.abs(oracle).max() + 1.0
    return np.abs(np.asarray(x) - oracle).max() / scale < tol


class TestEveryPathAgrees:
    def test_registry_algorithms(self, batch, oracle):
        for name in algorithm_names():
            assert _agrees(solve_with(name, batch), oracle), name

    @pytest.mark.parametrize("device", ["8800gtx", "gtx280", "gtx470"])
    @pytest.mark.parametrize("strategy", ["default", "static", "dynamic"])
    def test_multistage_grid(self, batch, oracle, device, strategy):
        result = MultiStageSolver(device, strategy).solve(batch)
        assert _agrees(result.x, oracle)

    def test_factorized_path(self, batch, oracle):
        assert _agrees(factorize(batch).solve(batch.d), oracle)

    def test_mixed_precision_path(self, batch, oracle):
        result = mixed_precision_solve(batch, tol=1e-13)
        assert _agrees(result.x, oracle)

    def test_cpu_baseline(self, batch, oracle):
        assert _agrees(MklLikeCpuSolver().solve(batch).x, oracle)

    def test_dispatcher(self, batch, oracle):
        x, _ = HybridDispatcher("gtx470").solve(batch)
        assert _agrees(x, oracle)

    def test_float32_paths_agree_to_single_precision(self, batch, oracle):
        b32 = batch.astype(np.float32)
        for device in ("8800gtx", "gtx470"):
            result = MultiStageSolver(device, "static").solve(b32)
            assert _agrees(result.x, oracle, tol=1e-3), device
